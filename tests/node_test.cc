// End-to-end tests of the CoRM node through the client Context: the full
// Table 2 API, consistency checks, and bulk loaders.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

CormConfig SmallConfig() {
  CormConfig config;
  config.num_workers = 4;
  config.block_pages = 1;  // 4 KiB blocks (paper default)
  config.object_id_bits = 16;
  return config;
}

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : node_(SmallConfig()), ctx_(Context::Create(&node_)) {}

  CormNode node_;
  std::unique_ptr<Context> ctx_;
};

TEST_F(NodeTest, AllocWriteReadFree) {
  auto addr = ctx_->Alloc(100);
  ASSERT_TRUE(addr.ok());
  EXPECT_FALSE(addr->IsNull());
  EXPECT_NE(addr->r_key, 0u);

  std::vector<uint8_t> data(100);
  PatternFill(1, data.data(), 100);
  ASSERT_TRUE(ctx_->Write(&*addr, data.data(), 100).ok());

  std::vector<uint8_t> out(100, 0);
  ASSERT_TRUE(ctx_->Read(&*addr, out.data(), 100).ok());
  EXPECT_EQ(out, data);

  ASSERT_TRUE(ctx_->Free(&*addr).ok());
  EXPECT_TRUE(addr->IsNull());
}

TEST_F(NodeTest, DirectReadMatchesRpcRead) {
  auto addr = ctx_->Alloc(200);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> data(200);
  PatternFill(2, data.data(), 200);
  ASSERT_TRUE(ctx_->Write(&*addr, data.data(), 200).ok());

  std::vector<uint8_t> direct(200), rpc(200);
  ASSERT_TRUE(ctx_->DirectRead(*addr, direct.data(), 200).ok());
  ASSERT_TRUE(ctx_->Read(&*addr, rpc.data(), 200).ok());
  EXPECT_EQ(direct, rpc);
  EXPECT_EQ(direct, data);
}

TEST(SingleWorkerNodeTest, ReadAfterFreeFails) {
  CormConfig config = SmallConfig();
  config.num_workers = 1;  // deterministic placement: same block
  CormNode node(config);
  auto ctx = Context::Create(&node);
  // Keep a sibling object alive so the block itself is not released.
  auto keeper = ctx->Alloc(32);
  auto addr = ctx->Alloc(32);
  ASSERT_TRUE(keeper.ok());
  ASSERT_TRUE(addr.ok());
  ASSERT_EQ(BlockBaseOf(keeper->vaddr, node.block_bytes()),
            BlockBaseOf(addr->vaddr, node.block_bytes()));
  GlobalAddr stale = *addr;
  ASSERT_TRUE(ctx->Free(&*addr).ok());
  std::vector<uint8_t> buf(32);
  Status st = ctx->Read(&stale, buf.data(), 32);
  EXPECT_FALSE(st.ok());
  // A one-sided read sees the tombstone.
  EXPECT_TRUE(ctx->DirectRead(stale, buf.data(), 32).IsObjectMoved());
}

TEST(SingleWorkerNodeTest, FreedBlockAddressBecomesStale) {
  CormConfig config = SmallConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  // When the *last* object of a block dies, the whole block is released;
  // its virtual address is no longer resolvable.
  auto addr = ctx->Alloc(32);
  ASSERT_TRUE(addr.ok());
  GlobalAddr stale = *addr;
  ASSERT_TRUE(ctx->Free(&*addr).ok());
  std::vector<uint8_t> buf(32);
  EXPECT_TRUE(ctx->Read(&stale, buf.data(), 32).IsStalePointer());
}

TEST_F(NodeTest, DoubleFreeRejected) {
  auto addr = ctx_->Alloc(32);
  ASSERT_TRUE(addr.ok());
  GlobalAddr copy = *addr;
  ASSERT_TRUE(ctx_->Free(&*addr).ok());
  EXPECT_FALSE(ctx_->Free(&copy).ok());
}

TEST_F(NodeTest, AllocationsLandInMatchingClasses) {
  // 4 KiB blocks: the largest usable class is 4096 (capacity 4025).
  for (uint32_t size : {1u, 8u, 24u, 56u, 100u, 500u, 2000u, 4000u}) {
    auto addr = ctx_->Alloc(size);
    ASSERT_TRUE(addr.ok()) << size;
    const uint32_t slot = node_.classes().ClassSize(addr->class_idx);
    EXPECT_GE(PayloadCapacity(slot), size);
  }
}

TEST_F(NodeTest, ObjectTooLargeRejected) {
  EXPECT_FALSE(ctx_->Alloc(1 << 20).ok());  // over the 4 KiB block
}

TEST_F(NodeTest, WriteBumpsVersionVisibleToDirectRead) {
  auto addr = ctx_->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> a(64, 1), b(64, 2), out(64);
  ASSERT_TRUE(ctx_->Write(&*addr, a.data(), 64).ok());
  ASSERT_TRUE(ctx_->DirectRead(*addr, out.data(), 64).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(ctx_->Write(&*addr, b.data(), 64).ok());
  ASSERT_TRUE(ctx_->DirectRead(*addr, out.data(), 64).ok());
  EXPECT_EQ(out, b);
}

TEST_F(NodeTest, ManyObjectsDistinctAddresses) {
  std::vector<GlobalAddr> addrs;
  for (int i = 0; i < 500; ++i) {
    auto addr = ctx_->Alloc(24);
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  for (size_t i = 0; i < addrs.size(); ++i) {
    for (size_t j = i + 1; j < addrs.size(); ++j) {
      ASSERT_NE(addrs[i].vaddr, addrs[j].vaddr);
    }
  }
}

TEST_F(NodeTest, BulkAllocPatternsReadable) {
  auto addrs = node_.BulkAlloc(1000, 48);
  ASSERT_TRUE(addrs.ok());
  ASSERT_EQ(addrs->size(), 1000u);
  std::vector<uint8_t> buf(48);
  // Bulk objects are pattern-filled by index.
  for (size_t i = 0; i < addrs->size(); i += 97) {
    ASSERT_TRUE(ctx_->DirectRead((*addrs)[i], buf.data(), 48).ok()) << i;
    EXPECT_TRUE(PatternCheck(i, buf.data(), 48)) << i;
  }
}

TEST_F(NodeTest, BulkFreeReleasesMemory) {
  const uint64_t before = node_.ActiveMemoryBytes();
  auto addrs = node_.BulkAlloc(2000, 48);
  ASSERT_TRUE(addrs.ok());
  EXPECT_GT(node_.ActiveMemoryBytes(), before);
  ASSERT_TRUE(node_.BulkFree(*addrs).ok());
  // Empty blocks are returned to the OS.
  EXPECT_EQ(node_.ActiveMemoryBytes(), before);
}

TEST_F(NodeTest, FragmentationReflectsFrees) {
  auto addrs = node_.BulkAlloc(1000, 48);
  ASSERT_TRUE(addrs.ok());
  auto frag0 = node_.Fragmentation();
  auto class_idx = node_.ClassForPayload(48);
  ASSERT_TRUE(class_idx.ok());
  EXPECT_NEAR(frag0[*class_idx].Ratio(), 1.0, 0.2);
  // Free every second object: ratio approaches 2.
  std::vector<GlobalAddr> half;
  for (size_t i = 0; i < addrs->size(); i += 2) half.push_back((*addrs)[i]);
  ASSERT_TRUE(node_.BulkFree(half).ok());
  auto frag1 = node_.Fragmentation();
  EXPECT_GT(frag1[*class_idx].Ratio(), 1.7);
}

TEST_F(NodeTest, StatsCountOperations) {
  auto addr = ctx_->Alloc(32);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> buf(16);
  ASSERT_TRUE(ctx_->Write(&*addr, buf.data(), 16).ok());
  ASSERT_TRUE(ctx_->Read(&*addr, buf.data(), 16).ok());
  ASSERT_TRUE(ctx_->Free(&*addr).ok());
  EXPECT_GE(node_.stats().rpc_allocs, 1u);
  EXPECT_GE(node_.stats().rpc_writes, 1u);
  EXPECT_GE(node_.stats().rpc_reads, 1u);
  EXPECT_GE(node_.stats().rpc_frees, 1u);
}

TEST_F(NodeTest, LocalContextReads) {
  Context::Options local;
  local.local = true;
  auto lctx = Context::Create(&node_, local);
  auto addr = ctx_->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> data(64);
  PatternFill(9, data.data(), 64);
  ASSERT_TRUE(ctx_->Write(&*addr, data.data(), 64).ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(lctx->DirectRead(*addr, out.data(), 64).ok());
  EXPECT_EQ(out, data);
}

TEST_F(NodeTest, ScanReadFindsObjectWithWrongHint) {
  auto addr = ctx_->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> data(64);
  PatternFill(4, data.data(), 64);
  ASSERT_TRUE(ctx_->Write(&*addr, data.data(), 64).ok());

  // Corrupt the offset hint: DirectRead must fail, ScanRead must recover.
  GlobalAddr bogus = *addr;
  const size_t slot_size = node_.classes().ClassSize(bogus.class_idx);
  const sim::VAddr base = BlockBaseOf(bogus.vaddr, node_.block_bytes());
  bogus.vaddr = base + ((bogus.vaddr - base + slot_size) %
                        (node_.block_bytes() / slot_size * slot_size));
  std::vector<uint8_t> out(64);
  EXPECT_TRUE(ctx_->DirectRead(bogus, out.data(), 64).IsObjectMoved());
  ASSERT_TRUE(ctx_->ScanRead(&bogus, out.data(), 64).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(bogus.vaddr, addr->vaddr);  // pointer corrected
}

TEST_F(NodeTest, RpcReadCorrectsWrongHint) {
  auto addr = ctx_->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> data(64);
  PatternFill(5, data.data(), 64);
  ASSERT_TRUE(ctx_->Write(&*addr, data.data(), 64).ok());

  GlobalAddr bogus = *addr;
  const size_t slot_size = node_.classes().ClassSize(bogus.class_idx);
  const sim::VAddr base = BlockBaseOf(bogus.vaddr, node_.block_bytes());
  bogus.vaddr = base + ((bogus.vaddr - base + slot_size) %
                        (node_.block_bytes() / slot_size * slot_size));
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(ctx_->Read(&bogus, out.data(), 64).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(bogus.vaddr, addr->vaddr);
  EXPECT_GE(ctx_->stats().pointer_corrections, 1u);
}

TEST_F(NodeTest, ReadWithRecoveryHandlesWrongHint) {
  auto addr = ctx_->Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> data(64);
  PatternFill(6, data.data(), 64);
  ASSERT_TRUE(ctx_->Write(&*addr, data.data(), 64).ok());

  GlobalAddr bogus = *addr;
  const size_t slot_size = node_.classes().ClassSize(bogus.class_idx);
  const sim::VAddr base = BlockBaseOf(bogus.vaddr, node_.block_bytes());
  bogus.vaddr = base + ((bogus.vaddr - base + slot_size) %
                        (node_.block_bytes() / slot_size * slot_size));
  std::vector<uint8_t> out(64, 0);
  ASSERT_TRUE(ctx_->ReadWithRecovery(&bogus, out.data(), 64,
                                     Context::MovedFallback::kRpcRead)
                  .ok());
  EXPECT_EQ(out, data);
}

TEST_F(NodeTest, VirtualMemoryTracked) {
  const uint64_t before = node_.VirtualMemoryBytes();
  auto addrs = node_.BulkAlloc(500, 48);
  ASSERT_TRUE(addrs.ok());
  EXPECT_GT(node_.VirtualMemoryBytes(), before);
  ASSERT_TRUE(node_.BulkFree(*addrs).ok());
  EXPECT_EQ(node_.VirtualMemoryBytes(), before);
}

// Paper Table 1 / §4 setup: FaRM emulation is the same node with IDs off.
TEST(FarmNodeTest, CompactionRefusedWithoutIds) {
  CormConfig config = SmallConfig();
  config.object_id_bits = 0;
  CormNode farm(config);
  auto ctx = Context::Create(&farm);
  auto addr = ctx->Alloc(32);
  ASSERT_TRUE(addr.ok());
  auto class_idx = farm.ClassForPayload(32);
  ASSERT_TRUE(class_idx.ok());
  auto report = farm.Compact(*class_idx);
  EXPECT_EQ(report.status().code(), StatusCode::kNotSupported);
  // Reads still work (same consistency protocol).
  std::vector<uint8_t> buf(32);
  EXPECT_TRUE(ctx->DirectRead(*addr, buf.data(), 32).ok());
}

}  // namespace
}  // namespace corm::core
