// Tests for the simulated RNIC: MTT snapshot semantics, the remap hazard,
// and the paper's three §3.5 repair strategies.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "rdma/queue_pair.h"
#include "rdma/rnic.h"
#include "rdma/rpc_transport.h"
#include "sim/address_space.h"
#include "sim/mem_file.h"
#include "sim/physical_memory.h"

namespace corm::rdma {
namespace {

using sim::AddressSpace;
using sim::kVPageSize;
using sim::LatencyModel;
using sim::MemFileManager;
using sim::PhysicalMemory;
using sim::VAddr;

class RnicTest : public ::testing::Test {
 protected:
  RnicTest() : space_(&phys_), rnic_(&space_, LatencyModel{}) {}

  // Maps `npages` fresh pages and returns the base.
  VAddr MapPages(size_t npages) {
    VAddr base = space_.ReserveRange(npages);
    EXPECT_TRUE(space_.MapFresh(base, npages).ok());
    return base;
  }

  PhysicalMemory phys_;
  AddressSpace space_;
  Rnic rnic_;
};

TEST_F(RnicTest, RegisterAndRead) {
  VAddr base = MapPages(1);
  const char data[] = "remote memory";
  ASSERT_TRUE(space_.WriteVirtual(base + 64, data, sizeof(data)).ok());
  auto keys = rnic_.RegisterMemory(base, 1, /*odp=*/false);
  ASSERT_TRUE(keys.ok());

  QueuePair qp(&rnic_);
  char out[sizeof(data)] = {};
  auto ns = qp.Read(keys->r_key, base + 64, out, sizeof(out));
  ASSERT_TRUE(ns.ok());
  EXPECT_STREQ(out, data);
  EXPECT_GE(*ns, 1700u);  // at least the modeled RTT
  EXPECT_EQ(qp.state(), QueuePair::State::kConnected);
}

TEST_F(RnicTest, ReadSpansPages) {
  VAddr base = MapPages(2);
  std::vector<uint8_t> data(kVPageSize, 0x7A);
  ASSERT_TRUE(
      space_.WriteVirtual(base + kVPageSize / 2, data.data(), data.size())
          .ok());
  auto keys = rnic_.RegisterMemory(base, 2, false);
  ASSERT_TRUE(keys.ok());
  QueuePair qp(&rnic_);
  std::vector<uint8_t> out(kVPageSize);
  ASSERT_TRUE(
      qp.Read(keys->r_key, base + kVPageSize / 2, out.data(), out.size())
          .ok());
  EXPECT_EQ(out, data);
}

TEST_F(RnicTest, InvalidKeyBreaksQp) {
  QueuePair qp(&rnic_);
  char buf[8];
  auto st = qp.Read(/*r_key=*/999, 0x1000, buf, 8);
  EXPECT_TRUE(st.status().IsQpBroken());
  EXPECT_EQ(qp.state(), QueuePair::State::kError);
  // Further ops fail until reconnect.
  EXPECT_TRUE(qp.Read(999, 0x1000, buf, 8).status().IsQpBroken());
  qp.Reconnect();
  EXPECT_EQ(qp.state(), QueuePair::State::kConnected);
  EXPECT_EQ(qp.reconnects(), 1u);
}

TEST_F(RnicTest, OutOfBoundsBreaksQp) {
  VAddr base = MapPages(1);
  auto keys = rnic_.RegisterMemory(base, 1, false);
  ASSERT_TRUE(keys.ok());
  QueuePair qp(&rnic_);
  char buf[64];
  auto st = qp.Read(keys->r_key, base + kVPageSize - 8, buf, 64);
  EXPECT_TRUE(st.status().IsQpBroken());
}

// The central hazard (paper §2.2.1): the OS remaps a page but the RNIC MTT
// still holds the old snapshot -> one-sided reads return the *old* frame's
// bytes while CPU reads see the new mapping.
TEST_F(RnicTest, StaleMttReadsOldFrameAfterRemap) {
  VAddr a = MapPages(1);
  VAddr b = MapPages(1);
  const uint32_t old_marker = 0x0DDF00D;
  const uint32_t new_marker = 0xB16B00B5;
  ASSERT_TRUE(space_.WriteVirtual(a, &old_marker, 4).ok());
  ASSERT_TRUE(space_.WriteVirtual(b, &new_marker, 4).ok());
  auto keys = rnic_.RegisterMemory(a, 1, /*odp=*/false);
  ASSERT_TRUE(keys.ok());

  ASSERT_TRUE(space_.Remap(a, b, 1).ok());
  // CPU sees the new mapping...
  uint32_t cpu = 0;
  ASSERT_TRUE(space_.ReadVirtual(a, &cpu, 4).ok());
  EXPECT_EQ(cpu, new_marker);
  // ...but RDMA through the stale MTT still reads the old frame.
  QueuePair qp(&rnic_);
  uint32_t rdma = 0;
  ASSERT_TRUE(qp.Read(keys->r_key, a, &rdma, 4).ok());
  EXPECT_EQ(rdma, old_marker);
}

// Strategy 1: ibv_rereg_mr refreshes the MTT, preserves keys, and breaks
// QPs that access the region mid-re-registration.
TEST_F(RnicTest, ReregRepairsTranslationAndPreservesKey) {
  VAddr a = MapPages(1);
  VAddr b = MapPages(1);
  const uint32_t marker = 0xCAFE;
  ASSERT_TRUE(space_.WriteVirtual(b, &marker, 4).ok());
  auto keys = rnic_.RegisterMemory(a, 1, false);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(space_.Remap(a, b, 1).ok());

  auto ns = rnic_.ReregMr(keys->r_key);
  ASSERT_TRUE(ns.ok());
  EXPECT_GE(*ns, 8000u);

  QueuePair qp(&rnic_);
  uint32_t out = 0;
  ASSERT_TRUE(qp.Read(keys->r_key, a, &out, 4).ok());  // same r_key!
  EXPECT_EQ(out, marker);
}

TEST_F(RnicTest, AccessDuringReregBreaksQp) {
  VAddr a = MapPages(1);
  auto keys = rnic_.RegisterMemory(a, 1, false);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(rnic_.BeginRereg(keys->r_key).ok());
  QueuePair qp(&rnic_);
  char buf[8];
  auto st = qp.Read(keys->r_key, a, buf, 8);
  EXPECT_TRUE(st.status().IsQpBroken());
  EXPECT_EQ(qp.state(), QueuePair::State::kError);
  ASSERT_TRUE(rnic_.EndRereg(keys->r_key).ok());
  qp.Reconnect();
  EXPECT_TRUE(qp.Read(keys->r_key, a, buf, 8).ok());
  EXPECT_GE(rnic_.stats().qp_breaks.load(), 1u);
}

// Strategy 2: ODP — the remap invalidates the MTT entry via the MMU
// notifier; the next read faults (~63 us) and then sees the new frame.
TEST_F(RnicTest, OdpInvalidatesAndFaults) {
  VAddr a = MapPages(1);
  VAddr b = MapPages(1);
  const uint32_t marker = 0xFACade;
  ASSERT_TRUE(space_.WriteVirtual(b, &marker, 4).ok());
  auto keys = rnic_.RegisterMemory(a, 1, /*odp=*/true);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(space_.Remap(a, b, 1).ok());

  QueuePair qp(&rnic_);
  uint32_t out = 0;
  auto first = qp.Read(keys->r_key, a, &out, 4);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(out, marker);                   // correct data immediately
  EXPECT_GE(*first, 63000u);                // paid the ODP miss
  EXPECT_EQ(rnic_.stats().odp_faults.load(), 1u);
  auto second = qp.Read(keys->r_key, a, &out, 4);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(*second, 10000u);               // subsequent reads are fast
  EXPECT_EQ(rnic_.stats().odp_faults.load(), 1u);
}

// Strategy 3: ODP + ibv_advise_mr prefetch avoids the first-read fault.
TEST_F(RnicTest, AdvisePrefetchAvoidsFault) {
  VAddr a = MapPages(1);
  VAddr b = MapPages(1);
  auto keys = rnic_.RegisterMemory(a, 1, true);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(space_.Remap(a, b, 1).ok());

  auto advise = rnic_.AdviseMr(keys->r_key, a, kVPageSize);
  ASSERT_TRUE(advise.ok());
  EXPECT_NEAR(static_cast<double>(*advise), 4550, 200);

  QueuePair qp(&rnic_);
  uint32_t out;
  auto ns = qp.Read(keys->r_key, a, &out, 4);
  ASSERT_TRUE(ns.ok());
  EXPECT_LT(*ns, 10000u);  // no fault
  EXPECT_EQ(rnic_.stats().odp_faults.load(), 0u);
  EXPECT_EQ(rnic_.stats().prefetches.load(), 1u);
}

TEST_F(RnicTest, AdviseOnNonOdpRegionRejected) {
  VAddr a = MapPages(1);
  auto keys = rnic_.RegisterMemory(a, 1, false);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(rnic_.AdviseMr(keys->r_key, a, kVPageSize).status().code(),
            StatusCode::kNotSupported);
}

TEST_F(RnicTest, DeregisterInvalidatesKey) {
  VAddr a = MapPages(1);
  auto keys = rnic_.RegisterMemory(a, 1, false);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(rnic_.DeregisterMemory(keys->r_key).ok());
  QueuePair qp(&rnic_);
  char buf[4];
  EXPECT_TRUE(qp.Read(keys->r_key, a, buf, 4).status().IsQpBroken());
}

TEST_F(RnicTest, MttPinsFrames) {
  VAddr a = MapPages(1);
  auto keys = rnic_.RegisterMemory(a, 1, false);
  ASSERT_TRUE(keys.ok());
  // Mapping ref + MTT ref.
  auto frame = space_.TranslatePage(a);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(phys_.RefCount(*frame), 2u);
  ASSERT_TRUE(space_.Unmap(a, 1).ok());
  EXPECT_EQ(phys_.live_frames(), 1u);  // still pinned by the RNIC
  ASSERT_TRUE(rnic_.DeregisterMemory(keys->r_key).ok());
  EXPECT_EQ(phys_.live_frames(), 0u);
}

TEST_F(RnicTest, RdmaWrite) {
  VAddr a = MapPages(1);
  auto keys = rnic_.RegisterMemory(a, 1, false);
  ASSERT_TRUE(keys.ok());
  QueuePair qp(&rnic_);
  const uint64_t value = 0x123456789abcdef0ULL;
  ASSERT_TRUE(qp.Write(keys->r_key, a + 8, &value, 8).ok());
  uint64_t cpu = 0;
  ASSERT_TRUE(space_.ReadVirtual(a + 8, &cpu, 8).ok());
  EXPECT_EQ(cpu, value);
}

// --- Doorbell/completion batching (DESIGN.md §12) ---------------------------

TEST_F(RnicTest, PostBatchChainsReadsForOneDoorbell) {
  constexpr size_t kWrs = 8;
  constexpr size_t kSlot = 64;
  VAddr base = MapPages(1);
  std::vector<uint8_t> data(kWrs * kSlot);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(space_.WriteVirtual(base, data.data(), data.size()).ok());
  auto keys = rnic_.RegisterMemory(base, 1, false);
  ASSERT_TRUE(keys.ok());

  QueuePair qp(&rnic_);
  std::vector<uint8_t> out(kWrs * kSlot);
  // Warm the MTT cache so the chain's cost is pure verb overhead.
  ASSERT_TRUE(qp.Read(keys->r_key, base, out.data(), out.size()).ok());
  WorkRequest wrs[kWrs];
  for (size_t i = 0; i < kWrs; ++i) {
    wrs[i].op = WorkRequest::Op::kRead;
    wrs[i].r_key = keys->r_key;
    wrs[i].addr = base + i * kSlot;
    wrs[i].buf = out.data() + i * kSlot;
    wrs[i].len = kSlot;
  }
  auto total = qp.PostBatch(wrs, kWrs);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(out, data);
  for (const WorkRequest& wr : wrs) EXPECT_TRUE(wr.status.ok());

  // The chain pays exactly one doorbell + one completion (selective
  // signaling): the RdmaBatchNs shape, ≥1.5x cheaper than n round trips.
  // Per-WR integer rounding of the byte leg can undershoot the aggregate
  // formula by at most 1 ns per WR.
  const LatencyModel& model = qp.model();
  EXPECT_GE(*total, model.RdmaBatchNs(kWrs, kWrs * kSlot, 0) - kWrs);
  EXPECT_LE(*total, model.RdmaBatchNs(kWrs, kWrs * kSlot, 0));
  EXPECT_GE(kWrs * model.RdmaReadNs(kSlot), *total * 3 / 2);
  EXPECT_EQ(qp.batches_posted(), 1u);
  EXPECT_EQ(qp.batched_wrs(), kWrs);
}

TEST_F(RnicTest, PostBatchAtomicsCoherentWithCpu) {
  VAddr base = MapPages(1);
  const uint64_t initial = 40;
  ASSERT_TRUE(space_.WriteVirtual(base, &initial, 8).ok());
  auto keys = rnic_.RegisterMemory(base, 1, false);
  ASSERT_TRUE(keys.ok());
  QueuePair qp(&rnic_);
  uint64_t warm = 0;
  ASSERT_TRUE(qp.Read(keys->r_key, base, &warm, 8).ok());  // warm the MTT

  // FETCH_ADD then CAS on the same word, chained; old_value is the per-WR
  // CQE payload, so the CAS sees the FETCH_ADD's result.
  WorkRequest wrs[2];
  wrs[0].op = WorkRequest::Op::kFetchAdd;
  wrs[0].r_key = keys->r_key;
  wrs[0].addr = base;
  wrs[0].operand = 2;
  wrs[1].op = WorkRequest::Op::kCas;
  wrs[1].r_key = keys->r_key;
  wrs[1].addr = base;
  wrs[1].compare = 42;
  wrs[1].operand = 99;
  auto total = qp.PostBatch(wrs, 2);
  ASSERT_TRUE(total.ok());
  EXPECT_TRUE(wrs[0].status.ok());
  EXPECT_TRUE(wrs[1].status.ok());
  EXPECT_EQ(wrs[0].old_value, 40u);
  EXPECT_EQ(wrs[1].old_value, 42u);  // CAS matched
  // Atomics ride an 8-byte wire leg each; the aggregate formula charges the
  // bytes once, so the chain lands between the 0-byte and 16-byte shapes.
  EXPECT_GE(*total, qp.model().RdmaBatchNs(2, 0, 2));
  EXPECT_LE(*total, qp.model().RdmaBatchNs(2, 16, 2));

  uint64_t cpu = 0;
  ASSERT_TRUE(space_.ReadVirtual(base, &cpu, 8).ok());
  EXPECT_EQ(cpu, 99u);

  // The single-WR verbs agree with the chain's end state.
  uint64_t prior = 0;
  ASSERT_TRUE(qp.CompareSwap(keys->r_key, base, 99, 7, &prior).ok());
  EXPECT_EQ(prior, 99u);
  ASSERT_TRUE(qp.FetchAdd(keys->r_key, base, 1, &prior).ok());
  EXPECT_EQ(prior, 7u);
  ASSERT_TRUE(space_.ReadVirtual(base, &cpu, 8).ok());
  EXPECT_EQ(cpu, 8u);
}

TEST_F(RnicTest, PostBatchFlushesRemainingWrsOnBreak) {
  VAddr base = MapPages(1);
  auto keys = rnic_.RegisterMemory(base, 1, false);
  ASSERT_TRUE(keys.ok());
  QueuePair qp(&rnic_);

  uint64_t words[3] = {0, 0, 0};
  WorkRequest wrs[3];
  for (int i = 0; i < 3; ++i) {
    wrs[i].op = WorkRequest::Op::kRead;
    wrs[i].r_key = keys->r_key;
    wrs[i].addr = base + i * 8;
    wrs[i].buf = &words[i];
    wrs[i].len = 8;
  }
  wrs[1].r_key = 999;  // breaks the QP mid-chain

  // IB flush semantics: the bad WR errors, later WRs on the same QP flush
  // with kQpBroken, but the chain as a whole still completes.
  auto total = qp.PostBatch(wrs, 3);
  ASSERT_TRUE(total.ok());
  EXPECT_TRUE(wrs[0].status.ok());
  EXPECT_TRUE(wrs[1].status.IsQpBroken());
  EXPECT_TRUE(wrs[2].status.IsQpBroken());
  EXPECT_EQ(qp.state(), QueuePair::State::kError);

  // A chain against an already-broken QP fails outright.
  EXPECT_TRUE(qp.PostBatch(wrs, 3).status().IsQpBroken());
}

TEST_F(RnicTest, PostBatchSharedSurvivesOneBrokenQp) {
  VAddr base = MapPages(1);
  const uint64_t seeded = 0x5151515151515151ULL;
  ASSERT_TRUE(space_.WriteVirtual(base, &seeded, 8).ok());
  auto keys = rnic_.RegisterMemory(base, 1, false);
  ASSERT_TRUE(keys.ok());
  QueuePair good(&rnic_);
  QueuePair bad(&rnic_);

  uint64_t words[2] = {0, 0};
  QueuePair* qps[2] = {&bad, &good};
  WorkRequest wrs[2];
  for (int i = 0; i < 2; ++i) {
    wrs[i].op = WorkRequest::Op::kRead;
    wrs[i].r_key = keys->r_key;
    wrs[i].addr = base;
    wrs[i].buf = &words[i];
    wrs[i].len = 8;
  }
  wrs[0].r_key = 999;  // only the first QP breaks

  auto total = PostBatchShared(qps, wrs, 2);
  ASSERT_TRUE(total.ok());
  EXPECT_TRUE(wrs[0].status.IsQpBroken());
  EXPECT_TRUE(wrs[1].status.ok());
  EXPECT_EQ(words[1], seeded);
  EXPECT_EQ(bad.state(), QueuePair::State::kError);
  EXPECT_EQ(good.state(), QueuePair::State::kConnected);
  // The shared chain is one doorbell charge, counted on the lead QP.
  EXPECT_EQ(bad.batches_posted() + good.batches_posted(), 1u);
}

// --- RPC transport -----------------------------------------------------------

TEST(RpcTransportTest, RequestResponseRoundTrip) {
  RpcQueue queue;
  RpcClient client(&queue, LatencyModel{});

  std::thread server([&] {
    RpcMessage* msg = nullptr;
    while ((msg = queue.Poll()) == nullptr) {
    }
    msg->response = Buffer(msg->request.rbegin(), msg->request.rend());
    msg->status = Status::OK();
    msg->done.store(true, std::memory_order_release);
    msg->Unref();  // the server's reference
  });

  RpcCallResult result = client.Call(Buffer{1, 2, 3});
  server.join();
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.response, (Buffer{3, 2, 1}));
  EXPECT_GT(result.network_ns, 0u);
}

TEST(RpcTransportTest, CallTimesOutWhenNobodyServes) {
  RpcQueue queue;  // no server polls it
  RetryPolicy policy;
  policy.deadline_ns = 20'000'000;  // 20 ms
  RpcClient client(&queue, LatencyModel{}, policy);

  RpcCallResult result = client.Call(Buffer{42});
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);

  // The abandoned message still sits in the queue; a late server completes
  // it without touching freed memory (the refcount keeps it alive).
  RpcMessage* msg = queue.Poll();
  ASSERT_NE(msg, nullptr);
  msg->status = Status::OK();
  msg->done.store(true, std::memory_order_release);
  msg->Unref();
}

TEST(RpcTransportTest, RateLimiterDisabledAtZeroScale) {
  NicMessageRateLimiter limiter(1);  // 1 msg/s — would stall if active
  limiter.Acquire();                 // must return instantly at scale 0
  SUCCEED();
}

}  // namespace
}  // namespace corm::rdma
