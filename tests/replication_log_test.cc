// Tests for the one-sided replicated log (DESIGN.md §11): record wire
// format, ring shipping under seeded faults (sequence gaps, ack delays),
// quorum acknowledgment semantics, epoch fencing across failover, and the
// anti-entropy repair path. Companion to the replication scenarios in
// dsm_test.cc, focused on the log machinery itself.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"
#include "dsm/replication.h"
#include "rdma/repl_record.h"
#include "sim/fault_injector.h"

namespace corm::dsm {
namespace {

using core::PatternCheck;
using core::PatternFill;

ClusterConfig SmallCluster(int nodes = 3) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.node_config.num_workers = 1;  // keep thread count sane on 1 CPU
  return config;
}

// Aggregates one repl counter across every node's sharded stats.
template <typename Field>
uint64_t SumStat(Cluster& cluster, Field field) {
  uint64_t total = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    total += cluster.node(i)->stats().*field;
  }
  return total;
}

// --- Wire format ------------------------------------------------------------

TEST(ReplRecordTest, RecordCrcDetectsCorruption) {
  rdma::ReplRecordHeader h;
  h.magic = rdma::kReplRecordMagic;
  h.epoch = 3;
  h.seq = 17;
  h.version = 42;
  h.payload_len = 8;
  h.kind = rdma::kReplRecordData;
  const uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  h.crc = rdma::ReplRecordCrc(h, payload, sizeof(payload));
  EXPECT_EQ(h.crc, rdma::ReplRecordCrc(h, payload, sizeof(payload)));

  // Any torn byte — header or payload — breaks the checksum.
  rdma::ReplRecordHeader torn = h;
  torn.seq ^= 1;
  EXPECT_NE(torn.crc, rdma::ReplRecordCrc(torn, payload, sizeof(payload)));
  uint8_t torn_payload[8];
  std::memcpy(torn_payload, payload, sizeof(payload));
  torn_payload[5] ^= 0x80;
  EXPECT_NE(h.crc, rdma::ReplRecordCrc(h, torn_payload, sizeof(payload)));
}

TEST(ReplRecordTest, ObjectCrcExcludesEpochSoSealsNeedNoPayload) {
  const uint8_t payload[16] = {9, 8, 7, 6, 5, 4, 3, 2,
                               1, 0, 1, 2, 3, 4, 5, 6};
  rdma::ReplObjectHeader h;
  h.epoch = 1;
  h.version = 7;
  h.len = sizeof(payload);
  h.crc = rdma::ReplObjectCrc(h.version, payload, h.len);
  ASSERT_TRUE(rdma::ReplObjectValid(h, payload));

  // A failover seal rewrites only the stored epoch; the image must stay
  // self-consistent without the sealer re-reading the payload.
  h.epoch = 2;
  EXPECT_TRUE(rdma::ReplObjectValid(h, payload));

  // But version and payload *are* covered.
  rdma::ReplObjectHeader stale = h;
  stale.version = 6;
  EXPECT_FALSE(rdma::ReplObjectValid(stale, payload));
  uint8_t torn[16];
  std::memcpy(torn, payload, sizeof(payload));
  torn[0] ^= 1;
  EXPECT_FALSE(rdma::ReplObjectValid(h, torn));
}

// --- Ship / apply under faults ---------------------------------------------

TEST(ReplLogTest, RoundTripAdvancesShipAndApplyCounters) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(64), out(64);
  PatternFill(1, in.data(), 64);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 64).ok());
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 64).ok());
  EXPECT_EQ(in, out);

  EXPECT_EQ(rctx.acked_writes(), 1u);
  EXPECT_EQ(addr->committed, 1u);
  // Alloc init-writes go through the plain RPC path, so the log counters
  // reflect exactly the replicated write: one record shipped into each
  // replica's ring, each durably applied.
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_ship_records), 2u);
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_applied_records), 2u);
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_acked_writes), 1u);
  EXPECT_TRUE(rctx.Free(&*addr).ok());
}

TEST(ReplLogTest, ShipDropGapsAreFilledByRetransmit) {
  Cluster cluster(SmallCluster(3));
  sim::FaultInjector inj(/*seed=*/7);
  // Every third ship attempt silently loses the record: the replica sees a
  // sequence gap and must hold later records until retransmit fills it.
  sim::FaultSchedule drops;
  drops.every_nth = 3;
  inj.Arm(sim::fault_sites::kReplShipDrop, drops);
  sim::ScopedFaultInjector scoped(&inj);

  ReplicationOptions ropts;
  ropts.ring_slots = 4;  // force ring wraparound and window pressure
  ReplicatedContext rctx(&cluster, 2, core::Context::Options{}, ropts);
  auto addr = rctx.Alloc(48);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(48), out(48);
  const int kWrites = 24;
  for (int i = 0; i < kWrites; ++i) {
    PatternFill(i, in.data(), 48);
    ASSERT_TRUE(rctx.Write(&*addr, in.data(), 48).ok()) << "write " << i;
  }
  EXPECT_GT(inj.FiredCount(sim::fault_sites::kReplShipDrop), 0u);
  EXPECT_EQ(rctx.acked_writes(), static_cast<uint64_t>(kWrites));
  EXPECT_EQ(addr->committed, static_cast<uint64_t>(kWrites));
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 48).ok());
  EXPECT_TRUE(PatternCheck(kWrites - 1, out.data(), 48));
}

TEST(ReplLogTest, AckDelayStallsButEveryWriteStillAcks) {
  Cluster cluster(SmallCluster(3));
  sim::FaultInjector inj(/*seed=*/11);
  sim::FaultSchedule delay;
  delay.probability = 0.25;
  delay.delay_ns = 20'000;
  inj.Arm(sim::fault_sites::kReplAckDelay, delay);
  sim::ScopedFaultInjector scoped(&inj);

  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(32);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(32);
  for (int i = 0; i < 8; ++i) {
    PatternFill(i, in.data(), 32);
    ASSERT_TRUE(rctx.Write(&*addr, in.data(), 32).ok());
  }
  EXPECT_GT(inj.FiredCount(sim::fault_sites::kReplAckDelay), 0u);
  EXPECT_EQ(rctx.acked_writes(), 8u);
  EXPECT_EQ(rctx.quorum_timeouts(), 0u);
}

// --- Quorum semantics -------------------------------------------------------

TEST(ReplLogTest, PausedBackupTimesOutWithoutAdvancingCommitted) {
  Cluster cluster(SmallCluster(3));
  ReplicationOptions ropts;
  ropts.quorum_deadline_ns = 5'000'000;  // 5 ms: keep the stall short
  ReplicatedContext rctx(&cluster, 2, core::Context::Options{}, ropts);
  auto addr = rctx.Alloc(40);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(40), out(40);
  PatternFill(1, in.data(), 40);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 40).ok());

  // A paused backup is unreachable-but-not-declared-dead: its workers stop
  // draining the ingress ring, so the quorum can never form, but the
  // failure detector still trusts it — the write must report UNCERTAIN
  // (kTimeout), not degrade around it.
  const int backup = NodeOf(addr->replicas[1]);
  cluster.node(backup)->PauseService();
  PatternFill(2, in.data(), 40);
  EXPECT_EQ(rctx.Write(&*addr, in.data(), 40).code(), StatusCode::kTimeout);
  EXPECT_EQ(rctx.quorum_timeouts(), 1u);
  EXPECT_EQ(addr->committed, 1u);  // the uncertain write is NOT acked

  // After the backup resumes, the next write draws a *fresh* version (the
  // uncertain one is consumed forever) and the object converges on it.
  cluster.node(backup)->ResumeService();
  PatternFill(3, in.data(), 40);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 40).ok());
  EXPECT_EQ(addr->committed, 3u);
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 40).ok());
  EXPECT_TRUE(PatternCheck(3, out.data(), 40));
}

TEST(ReplLogTest, DeadBackupDegradesAndQueuesRepair) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(40);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(40);
  PatternFill(1, in.data(), 40);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 40).ok());

  cluster.KillNode(NodeOf(addr->replicas[1]));
  PatternFill(2, in.data(), 40);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 40).ok());
  EXPECT_EQ(rctx.degraded_writes(), 1u);
  EXPECT_EQ(addr->committed, 2u);  // still acked: primary holds it durably
  EXPECT_EQ(rctx.pending_repairs(), 1u);
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_degraded_writes), 1u);
}

// --- Epoch fencing ----------------------------------------------------------

TEST(ReplLogTest, SealFencesStaleEpochRecords) {
  Cluster cluster(SmallCluster(3));
  sim::FaultInjector inj(/*seed=*/13);
  // The seal race: after failover seals the old epoch, a straggler record
  // stamped with that epoch arrives at the new primary. The applier's
  // epoch fence must reject it (repl_fenced_records) or an already-acked
  // write could be silently overwritten by a zombie writer.
  sim::FaultSchedule race;
  race.one_shot_at = 1;
  inj.Arm(sim::fault_sites::kReplSealRace, race);
  sim::ScopedFaultInjector scoped(&inj);

  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(64);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(64), out(64);
  PatternFill(1, in.data(), 64);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 64).ok());

  cluster.KillNode(NodeOf(addr->primary()));
  PatternFill(2, in.data(), 64);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 64).ok());
  EXPECT_EQ(inj.FiredCount(sim::fault_sites::kReplSealRace), 1u);
  EXPECT_EQ(rctx.failovers(), 1u);
  EXPECT_GE(rctx.seals(), 1u);
  EXPECT_EQ(addr->epoch, 2u);
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_fenced_records), 1u);
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_seals), 1u);

  // The fenced straggler must not have clobbered the epoch-2 write.
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 64).ok());
  EXPECT_TRUE(PatternCheck(2, out.data(), 64));
}

TEST(ReplLogTest, FailoverRefusesWhenCommittedStateIsUnreachable) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(40);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(40);
  // Degrade: the backup dies, then an acked write lands only on the
  // primary.
  cluster.KillNode(NodeOf(addr->replicas[1]));
  PatternFill(1, in.data(), 40);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 40).ok());
  // Now the primary (sole durable copy) dies and the backup revives empty:
  // promoting it would lose the acked write, so failover must refuse with
  // kTimeout (retryable once a replica with the committed state returns).
  cluster.ReviveNode(NodeOf(addr->replicas[1]));
  cluster.KillNode(NodeOf(addr->primary()));
  EXPECT_EQ(rctx.Failover(&*addr).code(), StatusCode::kTimeout);
}

// --- Anti-entropy -----------------------------------------------------------

TEST(ReplLogTest, AntiEntropyRepairsDegradedReplica) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(72);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(72), out(72);
  PatternFill(1, in.data(), 72);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 72).ok());

  const int backup = NodeOf(addr->replicas[1]);
  cluster.KillNode(backup);
  PatternFill(2, in.data(), 72);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 72).ok());
  ASSERT_EQ(rctx.pending_repairs(), 1u);

  cluster.ReviveNode(backup);
  EXPECT_EQ(rctx.RunAntiEntropySweep(8), 1u);
  EXPECT_EQ(rctx.pending_repairs(), 0u);
  EXPECT_GE(rctx.anti_entropy_repairs(), 1u);
  EXPECT_GE(SumStat(cluster, &core::NodeStats::repl_anti_entropy_repairs),
            1u);

  // Proof the repair copied real bytes: kill the primary so the *backup*
  // serves the read, and the repaired copy must carry the degraded write.
  cluster.KillNode(NodeOf(addr->primary()));
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 72).ok());
  EXPECT_TRUE(PatternCheck(2, out.data(), 72));
}

TEST(ReplLogTest, SchedulerHostedSweepDrainsRepairQueue) {
  Cluster cluster(SmallCluster(3));
  ReplicatedContext rctx(&cluster, 2);
  auto addr = rctx.Alloc(40);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(40);
  const int backup = NodeOf(addr->replicas[1]);
  cluster.KillNode(backup);
  PatternFill(1, in.data(), 40);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 40).ok());
  ASSERT_EQ(rctx.pending_repairs(), 1u);
  cluster.ReviveNode(backup);

  // The sweep runs on the PR-5 duty-cycled background scheduler; poll until
  // it picks up the queued repair.
  rctx.StartAntiEntropy(/*scheduler_node=*/0);
  for (int spin = 0; spin < 2000 && rctx.pending_repairs() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rctx.StopAntiEntropy();
  EXPECT_EQ(rctx.pending_repairs(), 0u);
  EXPECT_GE(rctx.anti_entropy_repairs(), 1u);
}

// --- RPC fallback for oversized images --------------------------------------

TEST(ReplLogTest, OversizedImageFallsBackToRpcAndStillAcks) {
  Cluster cluster(SmallCluster(3));
  ReplicationOptions ropts;
  ropts.ring_slot_bytes = 128;  // slot capacity 128-56=72 < the 124 B image
  ReplicatedContext rctx(&cluster, 2, core::Context::Options{}, ropts);
  auto addr = rctx.Alloc(100);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(100), out(100);
  PatternFill(1, in.data(), 100);
  ASSERT_TRUE(rctx.Write(&*addr, in.data(), 100).ok());
  EXPECT_EQ(rctx.acked_writes(), 1u);
  ASSERT_TRUE(rctx.Read(&*addr, out.data(), 100).ok());
  EXPECT_EQ(in, out);
}

}  // namespace
}  // namespace corm::dsm
