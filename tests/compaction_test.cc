// Compaction correctness: the two-stage protocol, RDMA-safe remapping,
// pointer correction, ghost release and virtual address reuse (§3.1-§3.3).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

CormConfig BaseConfig() {
  CormConfig config;
  config.num_workers = 2;
  config.block_pages = 1;
  config.object_id_bits = 16;
  return config;
}

// Allocates `count` objects of `payload` bytes via RPC, writes patterns.
std::vector<GlobalAddr> Load(Context* ctx, size_t count, uint32_t payload) {
  std::vector<GlobalAddr> addrs;
  std::vector<uint8_t> buf(payload);
  for (size_t i = 0; i < count; ++i) {
    auto addr = ctx->Alloc(payload);
    EXPECT_TRUE(addr.ok());
    PatternFill(i, buf.data(), payload);
    EXPECT_TRUE(ctx->Write(&*addr, buf.data(), payload).ok());
    addrs.push_back(*addr);
  }
  return addrs;
}

// Frees a fraction of the objects, spreading the holes uniformly.
std::vector<GlobalAddr> FreeEveryOther(Context* ctx,
                                       std::vector<GlobalAddr>* addrs,
                                       std::vector<size_t>* live_idx) {
  std::vector<GlobalAddr> survivors;
  for (size_t i = 0; i < addrs->size(); ++i) {
    if (i % 2 == 0) {
      GlobalAddr a = (*addrs)[i];
      EXPECT_TRUE(ctx->Free(&a).ok());
    } else {
      survivors.push_back((*addrs)[i]);
      if (live_idx) live_idx->push_back(i);
    }
  }
  return survivors;
}

class CompactionTest : public ::testing::TestWithParam<RpcCorrectionStrategy> {
 protected:
  CormConfig Config() {
    CormConfig config = BaseConfig();
    config.rpc_correction = GetParam();
    return config;
  }
};

TEST_P(CompactionTest, CompactionFreesBlocksAndPreservesData) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;  // class 64: 64 objects per 4 KiB block
  auto addrs = Load(ctx.get(), 512, kPayload);
  std::vector<size_t> live_idx;
  auto survivors = FreeEveryOther(ctx.get(), &addrs, &live_idx);

  const uint64_t active_before = node.ActiveMemoryBytes();
  auto class_idx = node.ClassForPayload(kPayload);
  ASSERT_TRUE(class_idx.ok());
  auto report = node.Compact(*class_idx);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->blocks_freed, 0u);
  EXPECT_GT(report->objects_moved, 0u);
  EXPECT_LT(node.ActiveMemoryBytes(), active_before);

  // Every survivor remains readable with intact data through the RPC path
  // (with server-side pointer correction).
  std::vector<uint8_t> buf(kPayload);
  for (size_t i = 0; i < survivors.size(); ++i) {
    GlobalAddr addr = survivors[i];
    ASSERT_TRUE(ctx->Read(&addr, buf.data(), kPayload).ok()) << i;
    EXPECT_TRUE(PatternCheck(live_idx[i], buf.data(), kPayload)) << i;
  }
}

TEST_P(CompactionTest, OneSidedReadsSurviveCompaction) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 512, kPayload);
  std::vector<size_t> live_idx;
  auto survivors = FreeEveryOther(ctx.get(), &addrs, &live_idx);
  auto report = node.Compact(*node.ClassForPayload(kPayload));
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->blocks_freed, 0u);

  // DirectRead with ScanRead fallback: the old vaddr still resolves via
  // the preserved r_key (remap + MTT repair), and moved objects are found
  // by scanning — no QP ever breaks with the ODP strategy.
  std::vector<uint8_t> buf(kPayload);
  for (size_t i = 0; i < survivors.size(); ++i) {
    GlobalAddr addr = survivors[i];
    ASSERT_TRUE(ctx->ReadWithRecovery(&addr, buf.data(), kPayload,
                                      Context::MovedFallback::kScanRead)
                    .ok())
        << i;
    EXPECT_TRUE(PatternCheck(live_idx[i], buf.data(), kPayload)) << i;
  }
  EXPECT_EQ(ctx->queue_pair()->reconnects(), 0u);
}

TEST_P(CompactionTest, WritesWorkOnIndirectPointers) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 120;  // class 128
  auto addrs = Load(ctx.get(), 256, kPayload);
  auto survivors = FreeEveryOther(ctx.get(), &addrs, nullptr);
  ASSERT_TRUE(node.Compact(*node.ClassForPayload(kPayload)).ok());

  std::vector<uint8_t> fresh(kPayload);
  std::vector<uint8_t> out(kPayload);
  for (size_t i = 0; i < survivors.size(); ++i) {
    GlobalAddr addr = survivors[i];
    PatternFill(10000 + i, fresh.data(), kPayload);
    ASSERT_TRUE(ctx->Write(&addr, fresh.data(), kPayload).ok()) << i;
    ASSERT_TRUE(ctx->Read(&addr, out.data(), kPayload).ok());
    EXPECT_EQ(out, fresh);
  }
}

TEST_P(CompactionTest, CorrectedPointersBecomeDirect) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 512, kPayload);
  auto survivors = FreeEveryOther(ctx.get(), &addrs, nullptr);
  ASSERT_TRUE(node.Compact(*node.ClassForPayload(kPayload)).ok());

  std::vector<uint8_t> buf(kPayload);
  for (GlobalAddr& addr : survivors) {
    ASSERT_TRUE(ctx->Read(&addr, buf.data(), kPayload).ok());
  }
  // After one corrected read, DirectReads succeed without fallback.
  for (GlobalAddr& addr : survivors) {
    EXPECT_TRUE(ctx->DirectRead(addr, buf.data(), kPayload).ok());
  }
}

TEST_P(CompactionTest, FreeThroughOldPointers) {
  CormNode node(Config());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 256, kPayload);
  auto survivors = FreeEveryOther(ctx.get(), &addrs, nullptr);
  ASSERT_TRUE(node.Compact(*node.ClassForPayload(kPayload)).ok());

  // Free every survivor through its (possibly stale) old pointer.
  for (GlobalAddr& addr : survivors) {
    ASSERT_TRUE(ctx->Free(&addr).ok());
  }
  // All memory of that class is gone; ghosts were released with the last
  // homed objects.
  auto frag = node.Fragmentation();
  EXPECT_EQ(frag[*node.ClassForPayload(kPayload)].granted_bytes, 0u);
  EXPECT_EQ(node.vaddr_ghosts_for_testing(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CompactionTest,
    ::testing::Values(RpcCorrectionStrategy::kThreadMessaging,
                      RpcCorrectionStrategy::kBlockScan),
    [](const auto& info) {
      return info.param == RpcCorrectionStrategy::kThreadMessaging
                 ? "ThreadMessaging"
                 : "BlockScan";
    });

// --- Remap strategies (§3.5) ------------------------------------------------

class RemapStrategyTest
    : public ::testing::TestWithParam<sim::RemapStrategy> {};

TEST_P(RemapStrategyTest, CompactionPreservesAccessUnderEveryStrategy) {
  CormConfig config = BaseConfig();
  config.remap_strategy = GetParam();
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 512, kPayload);
  std::vector<size_t> live_idx;
  auto survivors = FreeEveryOther(ctx.get(), &addrs, &live_idx);
  auto report = node.Compact(*node.ClassForPayload(kPayload));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->blocks_freed, 0u);

  std::vector<uint8_t> buf(kPayload);
  for (size_t i = 0; i < survivors.size(); ++i) {
    GlobalAddr addr = survivors[i];
    ASSERT_TRUE(ctx->ReadWithRecovery(&addr, buf.data(), kPayload).ok());
    EXPECT_TRUE(PatternCheck(live_idx[i], buf.data(), kPayload));
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, RemapStrategyTest,
                         ::testing::Values(sim::RemapStrategy::kReregMr,
                                           sim::RemapStrategy::kOdp,
                                           sim::RemapStrategy::kOdpPrefetch),
                         [](const auto& info) {
                           switch (info.param) {
                             case sim::RemapStrategy::kReregMr:
                               return "ReregMr";
                             case sim::RemapStrategy::kOdp:
                               return "Odp";
                             default:
                               return "OdpPrefetch";
                           }
                         });

// --- Pointer release & vaddr reuse (§3.3) ------------------------------------

TEST(PointerReleaseTest, ReleasePtrRehomesAndReleasesGhost) {
  CormConfig config = BaseConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 256, kPayload);
  auto survivors = FreeEveryOther(ctx.get(), &addrs, nullptr);
  const uint64_t vbytes_frag = node.VirtualMemoryBytes();
  ASSERT_TRUE(node.Compact(*node.ClassForPayload(kPayload)).ok());
  // Compaction alone frees physical memory but keeps all virtual ranges.
  EXPECT_EQ(node.VirtualMemoryBytes(), vbytes_frag);
  EXPECT_GT(node.vaddr_ghosts_for_testing(), 0u);

  // Release every old pointer: ghosts drain, virtual space shrinks.
  for (GlobalAddr& addr : survivors) {
    GlobalAddr before = addr;
    ASSERT_TRUE(ctx->ReleasePtr(&addr).ok());
    // The returned pointer is canonical (current block) and direct.
    std::vector<uint8_t> buf(kPayload);
    ASSERT_TRUE(ctx->DirectRead(addr, buf.data(), kPayload).ok());
    (void)before;
  }
  EXPECT_EQ(node.vaddr_ghosts_for_testing(), 0u);
  EXPECT_LT(node.VirtualMemoryBytes(), vbytes_frag);
}

TEST(PointerReleaseTest, OldPointerUseIsFlagged) {
  CormConfig config = BaseConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 256, kPayload);
  auto survivors = FreeEveryOther(ctx.get(), &addrs, nullptr);
  ASSERT_TRUE(node.Compact(*node.ClassForPayload(kPayload)).ok());

  // Objects whose block was merged away: reading through the old pointer
  // notifies the user via the flag (§3.3).
  bool saw_old_flag = false;
  std::vector<uint8_t> buf(kPayload);
  for (GlobalAddr& addr : survivors) {
    ASSERT_TRUE(ctx->Read(&addr, buf.data(), kPayload).ok());
    saw_old_flag |= addr.ReferencesOldBlock();
  }
  EXPECT_TRUE(saw_old_flag);
  EXPECT_GT(node.stats().old_pointer_uses, 0u);
}

// --- Policy (§3.1.3) ----------------------------------------------------------

TEST(CompactionPolicyTest, CompactIfFragmentedTriggersOnThreshold) {
  CormConfig config = BaseConfig();
  config.fragmentation_threshold = 1.5;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  auto addrs = Load(ctx.get(), 512, kPayload);

  // Fully utilized: nothing to do.
  auto none = node.CompactIfFragmented();
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  auto survivors = FreeEveryOther(ctx.get(), &addrs, nullptr);
  auto reports = node.CompactIfFragmented();
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_GT((*reports)[0].blocks_freed, 0u);
  (void)survivors;
}

// --- Repeated compaction / ghost chains --------------------------------------

TEST(ChainedCompactionTest, PointersSurviveMultipleRounds) {
  CormConfig config = BaseConfig();
  config.num_workers = 1;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 56;
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  auto addrs = Load(ctx.get(), 512, kPayload);
  std::vector<size_t> live_idx(addrs.size());
  for (size_t i = 0; i < addrs.size(); ++i) live_idx[i] = i;

  Rng rng(99);
  std::vector<uint8_t> buf(kPayload);
  for (int round = 0; round < 4; ++round) {
    // Free ~40% of the survivors at random, then compact.
    std::vector<GlobalAddr> next;
    std::vector<size_t> next_idx;
    for (size_t i = 0; i < addrs.size(); ++i) {
      if (rng.Chance(0.4)) {
        ASSERT_TRUE(ctx->Free(&addrs[i]).ok());
      } else {
        next.push_back(addrs[i]);
        next_idx.push_back(live_idx[i]);
      }
    }
    addrs = std::move(next);
    live_idx = std::move(next_idx);
    auto report = node.Compact(class_idx);
    ASSERT_TRUE(report.ok()) << "round " << round;

    // Every survivor readable with intact data, through *original-era*
    // pointers (never corrected between rounds).
    for (size_t i = 0; i < addrs.size(); ++i) {
      GlobalAddr addr = addrs[i];
      ASSERT_TRUE(ctx->ReadWithRecovery(&addr, buf.data(), kPayload).ok())
          << "round " << round << " obj " << i;
      EXPECT_TRUE(PatternCheck(live_idx[i], buf.data(), kPayload));
    }
  }
}

// Randomized property test: interleaved allocs/frees/compactions keep every
// live object intact and every dead pointer invalid.
TEST(CompactionPropertyTest, RandomChurnPreservesAllLiveObjects) {
  CormConfig config = BaseConfig();
  config.num_workers = 2;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 24;  // class 32: many objects per block
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  struct LiveObj {
    GlobalAddr addr;
    uint64_t pattern;
  };
  std::vector<LiveObj> live;
  Rng rng(7);
  uint64_t next_pattern = 0;
  std::vector<uint8_t> buf(kPayload);

  for (int step = 0; step < 3000; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || live.empty()) {
      auto addr = ctx->Alloc(kPayload);
      ASSERT_TRUE(addr.ok());
      PatternFill(next_pattern, buf.data(), kPayload);
      ASSERT_TRUE(ctx->Write(&*addr, buf.data(), kPayload).ok());
      live.push_back({*addr, next_pattern++});
    } else if (dice < 0.95) {
      const size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(ctx->Free(&live[victim].addr).ok());
      live[victim] = live.back();
      live.pop_back();
    } else {
      ASSERT_TRUE(node.Compact(class_idx).ok());
    }
  }
  ASSERT_TRUE(node.Compact(class_idx).ok());
  for (auto& obj : live) {
    ASSERT_TRUE(ctx->ReadWithRecovery(&obj.addr, buf.data(), kPayload).ok());
    EXPECT_TRUE(PatternCheck(obj.pattern, buf.data(), kPayload));
  }
}

}  // namespace
}  // namespace corm::core
