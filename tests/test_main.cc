// Shared gtest main: disables latency pacing so tests run at full speed
// (modeled durations are still returned and asserted on; they are just not
// slept).

#include <gtest/gtest.h>

#include "sim/latency_model.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  corm::sim::SetSimTimeScale(0.0);
  return RUN_ALL_TESTS();
}
