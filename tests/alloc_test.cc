// Tests for src/alloc: size classes, blocks, the thread-local allocator and
// the process-wide block allocator (including the compaction remap).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "alloc/block.h"
#include "alloc/block_allocator.h"
#include "alloc/fragmentation.h"
#include "alloc/size_classes.h"
#include "alloc/thread_allocator.h"
#include "rdma/queue_pair.h"
#include "rdma/rnic.h"
#include "sim/address_space.h"
#include "sim/mem_file.h"
#include "sim/physical_memory.h"

namespace corm::alloc {
namespace {

// --- SizeClassTable ---------------------------------------------------------

TEST(SizeClassTest, DefaultTableProperties) {
  auto table = SizeClassTable::Default();
  ASSERT_GE(table.num_classes(), 10u);
  EXPECT_EQ(table.ClassSize(0), 16u);
  for (uint32_t c = 0; c < table.num_classes(); ++c) {
    const uint32_t size = table.ClassSize(c);
    EXPECT_EQ(size % 8, 0u);
    // Runtime layout constraint: within a cacheline or a multiple of it.
    EXPECT_TRUE(size < 64 ? 64 % size == 0 : size % 64 == 0)
        << "class " << size;
  }
}

TEST(SizeClassTest, ClassForRoundsUp) {
  auto table = SizeClassTable::Default();
  auto c = table.ClassFor(33);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(table.ClassSize(*c), 64u);
  EXPECT_EQ(table.ClassSize(*table.ClassFor(64)), 64u);
  EXPECT_EQ(table.ClassSize(*table.ClassFor(65)), 128u);
  EXPECT_FALSE(table.ClassFor(1 << 30).ok());
}

TEST(SizeClassTest, InternalFragmentationBounded) {
  auto table = SizeClassTable::Default();
  for (uint32_t size = 16; size <= 16384; size += 7) {
    auto c = table.ClassFor(size);
    ASSERT_TRUE(c.ok());
    EXPECT_LE(static_cast<double>(table.ClassSize(*c)) / size, 2.0);
  }
}

TEST(SizeClassTest, PowersOfTwo) {
  auto table = SizeClassTable::PowersOfTwo(8, 2048);
  EXPECT_EQ(table.num_classes(), 9u);
  EXPECT_EQ(table.ClassSize(0), 8u);
  EXPECT_EQ(table.ClassSize(8), 2048u);
}

TEST(SizeClassTest, JemallocLikeCoversRedisSizes) {
  auto table = SizeClassTable::JemallocLike(256 * 1024);
  EXPECT_TRUE(table.ClassFor(8).ok());
  EXPECT_TRUE(table.ClassFor(150).ok());
  EXPECT_TRUE(table.ClassFor(160 * 1024).ok());
  // Spacing keeps rounding waste ~25%.
  for (uint32_t size = 64; size <= 160 * 1024; size = size * 2 + 13) {
    auto c = table.ClassFor(size);
    ASSERT_TRUE(c.ok());
    EXPECT_LE(static_cast<double>(table.ClassSize(*c)) / size, 1.3);
  }
}

// --- Block fixture ----------------------------------------------------------

class AllocTest : public ::testing::Test {
 protected:
  AllocTest()
      : space_(&phys_),
        files_(&phys_),
        rnic_(&space_, sim::LatencyModel{}),
        classes_(SizeClassTable::Default()) {}

  std::unique_ptr<BlockAllocator> MakeAllocator(size_t block_pages) {
    BlockAllocatorConfig config;
    config.block_pages = block_pages;
    return std::make_unique<BlockAllocator>(&space_, &files_, &rnic_,
                                            &classes_, config);
  }

  sim::PhysicalMemory phys_;
  sim::AddressSpace space_;
  sim::MemFileManager files_;
  rdma::Rnic rnic_;
  SizeClassTable classes_;
};

TEST_F(AllocTest, BlockSlotLifecycle) {
  auto ba = MakeAllocator(1);
  auto class_idx = classes_.ClassFor(64);
  ASSERT_TRUE(class_idx.ok());
  auto block = ba->AllocBlock(*class_idx);
  ASSERT_TRUE(block.ok());
  Block& b = **block;
  EXPECT_EQ(b.num_slots(), 4096u / 64);
  EXPECT_TRUE(b.Empty());

  std::set<uint32_t> slots;
  for (uint32_t i = 0; i < b.num_slots(); ++i) {
    auto slot = b.AllocSlot();
    ASSERT_TRUE(slot.has_value());
    EXPECT_TRUE(slots.insert(*slot).second) << "duplicate slot";
  }
  EXPECT_TRUE(b.Full());
  EXPECT_FALSE(b.AllocSlot().has_value());
  b.FreeSlot(17);
  EXPECT_FALSE(b.SlotAllocated(17));
  EXPECT_TRUE(b.AllocSlotAt(17));
  EXPECT_FALSE(b.AllocSlotAt(17));  // taken
  ba->DestroyBlock(std::move(*block));
}

TEST_F(AllocTest, BlockIdMap) {
  auto ba = MakeAllocator(1);
  auto block = ba->AllocBlock(0);
  ASSERT_TRUE(block.ok());
  Block& b = **block;
  EXPECT_TRUE(b.InsertId(42, 3));
  EXPECT_FALSE(b.InsertId(42, 9));  // ID conflict
  EXPECT_EQ(b.FindId(42).value(), 3u);
  EXPECT_FALSE(b.FindId(7).has_value());
  b.EraseId(42);
  EXPECT_FALSE(b.HasId(42));
  ba->DestroyBlock(std::move(*block));
}

TEST_F(AllocTest, SlotAddrGeometry) {
  auto ba = MakeAllocator(1);
  auto class_idx = classes_.ClassFor(128);
  auto block = ba->AllocBlock(*class_idx);
  ASSERT_TRUE(block.ok());
  Block& b = **block;
  EXPECT_EQ(b.SlotAddr(0), b.base());
  EXPECT_EQ(b.SlotAddr(3), b.base() + 3 * 128);
  EXPECT_EQ(b.SlotFor(b.base() + 3 * 128 + 5), 3u);
  ba->DestroyBlock(std::move(*block));
}

TEST_F(AllocTest, BlockAllocatorRegistersWithRnic) {
  auto ba = MakeAllocator(2);
  auto block = ba->AllocBlock(0);
  ASSERT_TRUE(block.ok());
  // The block is remotely readable through its r_key.
  rdma::QueuePair qp(&rnic_);
  char buf[16];
  EXPECT_TRUE(qp.Read((*block)->keys().r_key, (*block)->base() + 100, buf, 16)
                  .ok());
  ba->DestroyBlock(std::move(*block));
  EXPECT_EQ(phys_.live_frames(), 0u);  // fully released
}

TEST_F(AllocTest, DestroyReleasesEverything) {
  auto ba = MakeAllocator(4);
  const size_t pages_before = space_.reserved_pages();
  auto block = ba->AllocBlock(0);
  ASSERT_TRUE(block.ok());
  const sim::VAddr base = (*block)->base();
  ba->DestroyBlock(std::move(*block));
  EXPECT_EQ(space_.reserved_pages(), pages_before);
  // The virtual range is recycled for the next block.
  auto again = ba->AllocBlock(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->base(), base);
  ba->DestroyBlock(std::move(*again));
}

TEST_F(AllocTest, MergeRemapAliasesSourceToDestination) {
  auto ba = MakeAllocator(1);
  auto src = ba->AllocBlock(0);
  auto dst = ba->AllocBlock(0);
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  const uint64_t marker = 0xA110C;
  ASSERT_TRUE(space_.WriteVirtual((*dst)->base(), &marker, 8).ok());

  const size_t frames_before = phys_.live_frames();
  auto ns = ba->MergeRemap(src->get(), dst->get());
  ASSERT_TRUE(ns.ok());
  EXPECT_GT(*ns, 0u);
  // src's vaddr now reads dst's bytes.
  uint64_t out = 0;
  ASSERT_TRUE(space_.ReadVirtual((*src)->base(), &out, 8).ok());
  EXPECT_EQ(out, marker);
  // One physical page was freed.
  EXPECT_EQ(phys_.live_frames(), frames_before - 1);
  // RDMA through src's preserved r_key also reads dst's bytes (ODP default).
  rdma::QueuePair qp(&rnic_);
  out = 0;
  ASSERT_TRUE(qp.Read((*src)->keys().r_key, (*src)->base(), &out, 8).ok());
  EXPECT_EQ(out, marker);
  // dst inherited the ghost.
  ASSERT_EQ((*dst)->aliases().size(), 1u);
  EXPECT_EQ((*dst)->aliases()[0].base, (*src)->base());

  ba->ReleaseGhost((*src)->base(), 1, (*src)->keys().r_key);
  src->reset();
  ba->DestroyBlock(std::move(*dst));
  EXPECT_EQ(phys_.live_frames(), 0u);
}

TEST_F(AllocTest, MergeRemapFollowsGhostChains) {
  auto ba = MakeAllocator(1);
  auto a = ba->AllocBlock(0);
  auto b = ba->AllocBlock(0);
  auto c = ba->AllocBlock(0);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  const uint64_t marker = 0xC0FFEE;
  ASSERT_TRUE(space_.WriteVirtual((*c)->base(), &marker, 8).ok());

  // a -> b, then b -> c: a's range must follow to c.
  ASSERT_TRUE(ba->MergeRemap(a->get(), b->get()).ok());
  ASSERT_TRUE(ba->MergeRemap(b->get(), c->get()).ok());
  uint64_t out = 0;
  ASSERT_TRUE(space_.ReadVirtual((*a)->base(), &out, 8).ok());
  EXPECT_EQ(out, marker);
  rdma::QueuePair qp(&rnic_);
  out = 0;
  ASSERT_TRUE(qp.Read((*a)->keys().r_key, (*a)->base(), &out, 8).ok());
  EXPECT_EQ(out, marker);
  EXPECT_EQ((*c)->aliases().size(), 2u);
}

// --- ThreadAllocator ---------------------------------------------------------

TEST_F(AllocTest, ThreadAllocatorAllocFree) {
  auto ba = MakeAllocator(1);
  ThreadAllocator ta(0, ba.get());
  auto a1 = ta.Alloc(0);
  ASSERT_TRUE(a1.ok());
  EXPECT_TRUE(a1->new_block);
  auto a2 = ta.Alloc(0);
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(a2->new_block);
  EXPECT_EQ(a1->block, a2->block);
  EXPECT_EQ(ta.UsedBytes(0), 2u * classes_.ClassSize(0));
  EXPECT_FALSE(ta.Free(a1->block, a1->slot));
  EXPECT_TRUE(ta.Free(a2->block, a2->slot));  // became empty
}

TEST_F(AllocTest, ThreadAllocatorSpillsToNewBlocks) {
  auto ba = MakeAllocator(1);
  ThreadAllocator ta(0, ba.get());
  auto class_idx = classes_.ClassFor(2048);
  ASSERT_TRUE(class_idx.ok());
  const uint32_t per_block = 4096 / 2048;
  for (uint32_t i = 0; i < per_block * 3; ++i) {
    ASSERT_TRUE(ta.Alloc(*class_idx).ok());
  }
  EXPECT_EQ(ta.NumBlocks(*class_idx), 3u);
  EXPECT_EQ(ta.GrantedBytes(*class_idx), 3u * 4096);
}

TEST_F(AllocTest, CollectBlocksPrefersLeastUtilized) {
  auto ba = MakeAllocator(1);
  ThreadAllocator ta(0, ba.get());
  auto class_idx = classes_.ClassFor(1024);  // 4 slots per block
  ASSERT_TRUE(class_idx.ok());
  std::vector<ThreadAllocator::Allocation> allocs;
  for (int i = 0; i < 12; ++i) {
    auto a = ta.Alloc(*class_idx);
    ASSERT_TRUE(a.ok());
    allocs.push_back(*a);
  }
  // Block 0: free 3 of 4 (occupancy 0.25); block 1: free 2 (0.5); block 2
  // stays full.
  ta.Free(allocs[0].block, allocs[0].slot);
  ta.Free(allocs[1].block, allocs[1].slot);
  ta.Free(allocs[2].block, allocs[2].slot);
  ta.Free(allocs[4].block, allocs[4].slot);
  ta.Free(allocs[5].block, allocs[5].slot);

  auto collected = ta.CollectBlocks(*class_idx, 0.9, 100);
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_LE(collected[0]->used_slots(), collected[1]->used_slots());
  EXPECT_EQ(ta.NumBlocks(*class_idx), 1u);
  // Detached blocks are unowned.
  EXPECT_EQ(collected[0]->owner_thread(), -1);
  // Adopt them back.
  ta.AdoptBlock(std::move(collected[0]));
  ta.AdoptBlock(std::move(collected[1]));
  EXPECT_EQ(ta.NumBlocks(*class_idx), 3u);
  // Allocation reuses an adopted non-full block instead of a fresh one.
  auto again = ta.Alloc(*class_idx);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->new_block);
}

TEST_F(AllocTest, FragmentationAccounting) {
  auto ba = MakeAllocator(1);
  ThreadAllocator t0(0, ba.get()), t1(1, ba.get());
  auto class_idx = classes_.ClassFor(1024);
  std::vector<ThreadAllocator::Allocation> a0;
  for (int i = 0; i < 4; ++i) a0.push_back(*t0.Alloc(*class_idx));
  (void)t1.Alloc(*class_idx);
  t0.Free(a0[0].block, a0[0].slot);
  t0.Free(a0[1].block, a0[1].slot);

  auto frag = ComputeFragmentation({&t0, &t1}, classes_.num_classes());
  const auto& cls = frag[*class_idx];
  EXPECT_EQ(cls.granted_bytes, 2u * 4096);
  EXPECT_EQ(cls.used_bytes, 3u * 1024);
  EXPECT_NEAR(cls.Ratio(), 8192.0 / 3072.0, 1e-9);
  EXPECT_EQ(cls.num_blocks, 2u);
}

}  // namespace
}  // namespace corm::alloc
