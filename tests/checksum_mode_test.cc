// Tests for the §4.2.1 checksum consistency alternative: layout round
// trips, torn-snapshot detection, and the full node running end-to-end in
// checksum mode (including compaction).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

constexpr auto kChecksum = ConsistencyMode::kChecksum;

TEST(ChecksumLayoutTest, CapacityBeatsVersionsForLargeSlots) {
  // One 4-byte checksum vs one byte per extra cacheline: checksum mode has
  // strictly more usable payload from 384 B slots upward.
  EXPECT_EQ(PayloadCapacity(64, kChecksum), 64u - 8 - 4);
  EXPECT_EQ(PayloadCapacity(4096, kChecksum), 4096u - 8 - 4);
  EXPECT_GT(PayloadCapacity(4096, kChecksum),
            PayloadCapacity(4096, ConsistencyMode::kCachelineVersions));
  // ...and strictly less for single-cacheline slots.
  EXPECT_LT(PayloadCapacity(32, kChecksum),
            PayloadCapacity(32, ConsistencyMode::kCachelineVersions));
}

TEST(ChecksumLayoutTest, RoundTrip) {
  for (uint32_t slot_size : {32u, 64u, 256u, 2048u, 8192u}) {
    const uint32_t capacity = PayloadCapacity(slot_size, kChecksum);
    std::vector<uint8_t> slot(slot_size, 0);
    std::vector<uint8_t> in(capacity), out(capacity);
    PatternFill(3, in.data(), capacity);
    WritePayload(slot.data(), slot_size, /*version=*/7, in.data(), capacity,
                 kChecksum);
    ObjectHeader h;
    h.version = 7;
    const uint64_t packed = h.Pack();
    std::memcpy(slot.data(), &packed, 8);
    EXPECT_TRUE(SnapshotConsistent(slot.data(), slot_size, kChecksum))
        << slot_size;
    ReadPayload(slot.data(), slot_size, out.data(), capacity, kChecksum);
    EXPECT_EQ(in, out);
  }
}

TEST(ChecksumLayoutTest, DetectsTornPayload) {
  const uint32_t slot_size = 2048;
  const uint32_t capacity = PayloadCapacity(slot_size, kChecksum);
  std::vector<uint8_t> slot(slot_size, 0);
  std::vector<uint8_t> in(capacity);
  PatternFill(4, in.data(), capacity);
  WritePayload(slot.data(), slot_size, 1, in.data(), capacity, kChecksum);
  ObjectHeader h;
  h.version = 1;
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  ASSERT_TRUE(SnapshotConsistent(slot.data(), slot_size, kChecksum));
  // Flip one payload byte anywhere: the checksum must catch it.
  for (uint32_t offset : {8u, 100u, 1000u, slot_size - 5}) {
    slot[offset] ^= 0x01;
    EXPECT_FALSE(SnapshotConsistent(slot.data(), slot_size, kChecksum))
        << offset;
    slot[offset] ^= 0x01;
  }
}

TEST(ChecksumLayoutTest, DetectsVersionPayloadMix) {
  // Snapshot with a *newer header version* but the old payload/checksum:
  // the checksum covers the version byte, so the mix fails.
  const uint32_t slot_size = 256;
  const uint32_t capacity = PayloadCapacity(slot_size, kChecksum);
  std::vector<uint8_t> slot(slot_size, 0);
  std::vector<uint8_t> in(capacity, 0xAA);
  WritePayload(slot.data(), slot_size, 1, in.data(), capacity, kChecksum);
  ObjectHeader h;
  h.version = 2;  // header advanced; payload/checksum still version 1
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  EXPECT_FALSE(SnapshotConsistent(slot.data(), slot_size, kChecksum));
}

TEST(ChecksumLayoutTest, PartialWriteKeepsWholeRegionProtected) {
  const uint32_t slot_size = 512;
  const uint32_t capacity = PayloadCapacity(slot_size, kChecksum);
  std::vector<uint8_t> slot(slot_size, 0);
  WritePayload(slot.data(), slot_size, 1, nullptr, 0, kChecksum);
  std::vector<uint8_t> half(capacity / 2, 0x42);
  WritePayload(slot.data(), slot_size, 2, half.data(),
               static_cast<uint32_t>(half.size()), kChecksum);
  ObjectHeader h;
  h.version = 2;
  const uint64_t packed = h.Pack();
  std::memcpy(slot.data(), &packed, 8);
  ASSERT_TRUE(SnapshotConsistent(slot.data(), slot_size, kChecksum));
  // Corrupting the *untouched* half is also detected.
  slot[8 + capacity - 1] ^= 1;
  EXPECT_FALSE(SnapshotConsistent(slot.data(), slot_size, kChecksum));
}

// --- Full node in checksum mode ---------------------------------------------

CormConfig ChecksumConfig() {
  CormConfig config;
  config.num_workers = 2;
  config.consistency = kChecksum;
  return config;
}

TEST(ChecksumNodeTest, EndToEndReadWrite) {
  CormNode node(ChecksumConfig());
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(500);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> in(500), out(500);
  PatternFill(7, in.data(), 500);
  ASSERT_TRUE(ctx->Write(&*addr, in.data(), 500).ok());
  ASSERT_TRUE(ctx->DirectRead(*addr, out.data(), 500).ok());
  EXPECT_EQ(in, out);
  std::fill(out.begin(), out.end(), 0);
  ASSERT_TRUE(ctx->Read(&*addr, out.data(), 500).ok());
  EXPECT_EQ(in, out);
}

TEST(ChecksumNodeTest, LargerObjectsFitSameClass) {
  // 4096-byte slots: checksum capacity 4084 > versions capacity 4025.
  CormNode node(ChecksumConfig());
  auto ctx = Context::Create(&node);
  auto addr = ctx->Alloc(4084);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(node.classes().ClassSize(addr->class_idx), 4096u);
}

TEST(ChecksumNodeTest, CompactionPreservesChecksummedObjects) {
  CormNode node(ChecksumConfig());
  auto ctx = Context::Create(&node);
  constexpr uint32_t kPayload = 52;  // class 64 in checksum mode
  std::vector<GlobalAddr> addrs;
  std::vector<uint8_t> buf(kPayload);
  for (int i = 0; i < 512; ++i) {
    auto addr = ctx->Alloc(kPayload);
    ASSERT_TRUE(addr.ok());
    PatternFill(i, buf.data(), kPayload);
    ASSERT_TRUE(ctx->Write(&*addr, buf.data(), kPayload).ok());
    addrs.push_back(*addr);
  }
  std::vector<GlobalAddr> survivors;
  std::vector<int> live_idx;
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(ctx->Free(&addrs[i]).ok());
    } else {
      survivors.push_back(addrs[i]);
      live_idx.push_back(static_cast<int>(i));
    }
  }
  auto report = node.Compact(*node.ClassForPayload(kPayload));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->blocks_freed, 0u);
  for (size_t i = 0; i < survivors.size(); ++i) {
    ASSERT_TRUE(
        ctx->ReadWithRecovery(&survivors[i], buf.data(), kPayload).ok())
        << i;
    EXPECT_TRUE(PatternCheck(live_idx[i], buf.data(), kPayload));
  }
}

TEST(ChecksumNodeTest, ConcurrentWriterNeverYieldsTornReads) {
  CormNode node(ChecksumConfig());
  auto wctx = Context::Create(&node);
  constexpr uint32_t kPayload = 1000;
  auto addr = wctx->Alloc(kPayload);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> init(kPayload);
  PatternFill(0, init.data(), kPayload);
  ASSERT_TRUE(wctx->Write(&*addr, init.data(), kPayload).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::vector<uint8_t> buf(kPayload);
    GlobalAddr waddr = *addr;
    for (uint64_t round = 1; !stop.load(); ++round) {
      PatternFill(round % 64, buf.data(), kPayload);
      ASSERT_TRUE(wctx->Write(&waddr, buf.data(), kPayload).ok());
    }
  });
  auto rctx = Context::Create(&node);
  std::vector<uint8_t> buf(kPayload);
  uint64_t verified = 0;
  while (verified < 1000) {
    Status st = rctx->DirectRead(*addr, buf.data(), kPayload);
    if (!st.ok()) {
      ASSERT_TRUE(st.IsTornRead() || st.IsObjectLocked()) << st;
      continue;
    }
    bool matched = false;
    for (uint64_t round = 0; round < 64 && !matched; ++round) {
      matched = PatternCheck(round, buf.data(), kPayload);
    }
    ASSERT_TRUE(matched) << "torn snapshot passed the checksum";
    ++verified;
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace corm::core
