// Property tests connecting the implemented system to the paper's models:
// the §3.4 probability formula against the *actual* allocator+compactor,
// end-to-end round trips across every size class, and refcount invariants
// of the paging substrate under random remap churn.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"
#include "core/probability.h"
#include "sim/address_space.h"
#include "sim/mem_file.h"
#include "sim/physical_memory.h"

namespace corm {
namespace {

// --- §3.4 formula vs the real allocator/compactor --------------------------
// Fill pairs of blocks to a target occupancy through the actual simulator
// (random IDs, random offsets) and compare the measured merge success rate
// with CompactionProbability.
class FormulaVsSystem
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, double>> {};

TEST_P(FormulaVsSystem, MergeRateMatchesFormula) {
  const auto [id_bits, object_size, occupancy] = GetParam();
  const size_t block_bytes = 4 * kKiB;
  const uint64_t s = block_bytes / object_size;
  const auto b = static_cast<uint64_t>(s * occupancy);
  if (b == 0 || 2 * b > s) GTEST_SKIP();
  auto classes = alloc::SizeClassTable::PowersOfTwo(8, 4096);

  const int kTrials = 300;
  int merged = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    baseline::SimConfig config;
    config.algorithm = baseline::Algorithm::kCorm;
    config.id_bits = id_bits;
    config.block_bytes = block_bytes;
    config.num_threads = 2;
    config.seed = 7000 + trial;
    baseline::AllocatorSim sim(config, &classes);
    for (uint64_t i = 0; i < b; ++i) {
      sim.AllocOnThread(object_size, 0);
      sim.AllocOnThread(object_size, 1);
    }
    ASSERT_EQ(sim.num_blocks(), 2u);
    merged += sim.Compact().blocks_after == 1;
  }
  const double expected =
      core::CormCompactionProbability(id_bits, s, b, b);
  const double measured = static_cast<double>(merged) / kTrials;
  // 300 trials: allow ~4 sigma of binomial noise plus model slack.
  const double sigma =
      std::sqrt(std::max(expected * (1 - expected), 0.02) / kTrials);
  EXPECT_NEAR(measured, expected, 4 * sigma + 0.02)
      << "bits=" << id_bits << " size=" << object_size << " occ=" << occupancy;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FormulaVsSystem,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values<uint32_t>(64, 128, 256),
                       ::testing::Values(0.125, 0.25, 0.375)));

// --- End-to-end round trip at every size class ------------------------------

class EveryClassRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EveryClassRoundTrip, MaxPayloadSurvivesAllPaths) {
  const uint32_t slot_size = GetParam();
  const uint32_t payload = core::PayloadCapacity(slot_size);
  core::CormConfig config;
  config.num_workers = 2;
  config.block_pages = (slot_size + 4095) / 4096;  // block must fit the slot
  core::CormNode node(config);
  auto ctx = core::Context::Create(&node);

  auto addr = ctx->Alloc(payload);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(node.classes().ClassSize(addr->class_idx), slot_size);

  std::vector<uint8_t> in(payload), out(payload);
  core::PatternFill(99, in.data(), payload);
  ASSERT_TRUE(ctx->Write(&*addr, in.data(), payload).ok());
  ASSERT_TRUE(ctx->Read(&*addr, out.data(), payload).ok());
  EXPECT_EQ(in, out);
  std::fill(out.begin(), out.end(), 0);
  ASSERT_TRUE(ctx->DirectRead(*addr, out.data(), payload).ok());
  EXPECT_EQ(in, out);
  std::fill(out.begin(), out.end(), 0);
  core::GlobalAddr scan = *addr;
  ASSERT_TRUE(ctx->ScanRead(&scan, out.data(), payload).ok());
  EXPECT_EQ(in, out);
  ASSERT_TRUE(ctx->Free(&*addr).ok());
}

INSTANTIATE_TEST_SUITE_P(AllClasses, EveryClassRoundTrip,
                         ::testing::Values(16, 32, 64, 128, 192, 256, 384,
                                           512, 768, 1024, 1536, 2048, 3072,
                                           4096, 6144, 8192, 12288, 16384));

// --- Paging substrate invariants under random churn -------------------------

TEST(PagingPropertyTest, RefcountsBalanceUnderRandomRemaps) {
  sim::PhysicalMemory phys;
  {
    sim::AddressSpace space(&phys);
    sim::MemFileManager files(&phys);
    Rng rng(321);

    struct Mapping {
      sim::VAddr base;
      sim::PhysBlock phys_block;
      bool hole_punched = false;
    };
    std::vector<Mapping> mappings;
    for (int step = 0; step < 2000; ++step) {
      const double dice = rng.NextDouble();
      if (dice < 0.4 || mappings.size() < 2) {
        const size_t npages = 1 + rng.Uniform(4);
        auto block = files.AllocBlock(npages);
        ASSERT_TRUE(block.ok());
        sim::VAddr base = space.ReserveRange(npages);
        ASSERT_TRUE(space.MapFrames(base, block->frames).ok());
        mappings.push_back({base, *block});
      } else if (dice < 0.7) {
        // Remap a random mapping onto another of the same size.
        const size_t a = rng.Uniform(mappings.size());
        const size_t b = rng.Uniform(mappings.size());
        if (a == b ||
            mappings[a].phys_block.frames.size() !=
                mappings[b].phys_block.frames.size()) {
          continue;
        }
        ASSERT_TRUE(space
                        .Remap(mappings[a].base, mappings[b].base,
                               mappings[a].phys_block.frames.size())
                        .ok());
        if (!mappings[a].hole_punched) {
          files.FreeBlock(mappings[a].phys_block);
          mappings[a].hole_punched = true;
        }
      } else {
        const size_t victim = rng.Uniform(mappings.size());
        Mapping m = mappings[victim];
        ASSERT_TRUE(
            space.Unmap(m.base, m.phys_block.frames.size()).ok());
        space.ReleaseRange(m.base, m.phys_block.frames.size());
        if (!m.hole_punched) files.FreeBlock(m.phys_block);
        mappings[victim] = mappings.back();
        mappings.pop_back();
      }
      // Invariant: every live frame is reachable (ref > 0 by definition);
      // mapped pages all translate.
      for (const auto& m : mappings) {
        ASSERT_NE(space.TranslatePtr(m.base), nullptr);
      }
    }
    // Drain.
    for (const auto& m : mappings) {
      ASSERT_TRUE(space.Unmap(m.base, m.phys_block.frames.size()).ok());
      if (!m.hole_punched) files.FreeBlock(m.phys_block);
    }
  }
  EXPECT_EQ(phys.live_frames(), 0u) << "leaked frame references";
}

// --- Compaction converges toward the ideal when IDs are wide ---------------

TEST(ConvergenceTest, WideIdsReachNearIdealOccupancy) {
  auto classes = alloc::SizeClassTable::PowersOfTwo(8, 16 * 1024);
  baseline::SimConfig config;
  config.algorithm = baseline::Algorithm::kCorm;
  config.id_bits = 16;
  config.block_bytes = kMiB;
  config.num_threads = 4;
  baseline::AllocatorSim sim(config, &classes);
  Rng rng(11);
  std::vector<baseline::SimHandle> handles;
  for (int i = 0; i < 50000; ++i) handles.push_back(sim.Alloc(4096));
  for (auto h : handles) {
    if (rng.Chance(0.8)) sim.Free(h);
  }
  sim.Compact();
  // 4 KiB objects, 16-bit IDs, 256 slots/block: conflicts are negligible;
  // the result must be within a few blocks (per-thread rounding) + header
  // overhead of the ideal compactor.
  EXPECT_LE(sim.ActiveBytes(),
            sim.IdealBytes() + 5 * kMiB + 50000 * 6);
}

}  // namespace
}  // namespace corm
