// Positive control for the compile-fail suite: correctly-locked code using
// the same primitives as the *_fail cases. If this target does not build,
// the harness (include paths, flags, annotation macros) is broken and the
// fail cases' failures prove nothing. See tests/compile_fail/CMakeLists.txt.

#include "common/mutex.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    corm::LockGuard<corm::Mutex> lock(mu_);
    ++value_;
  }

  int Value() {
    corm::LockGuard<corm::Mutex> lock(mu_);
    return value_;
  }

  // REQUIRES flavor: the caller holds the lock; the analysis verifies both
  // sides of the contract.
  int ValueLocked() const REQUIRES(mu_) { return value_; }

  int ValueViaContract() {
    corm::LockGuard<corm::Mutex> lock(mu_);
    return ValueLocked();
  }

  corm::Mutex& mu() RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable corm::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

int SpinLockedSum() {
  corm::SpinLock lock;
  int sum = 0;
  lock.lock();
  sum += 1;
  lock.unlock();
  if (lock.try_lock()) {
    sum += 2;
    lock.unlock();
  }
  return sum;
}

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Value() + c.ValueViaContract() + SpinLockedSum() - 4;
}
