// Compile-FAIL case: mutating a GUARDED_BY member without holding its
// mutex. Under clang with -Werror=thread-safety-analysis this translation
// unit must NOT compile; the ctest entry inverts the build result
// (WILL_FAIL). See tests/compile_fail/CMakeLists.txt.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): writes value_ with mu_ not held — the exact defect
  // the analysis exists to reject at compile time.
  void Bump() { ++value_; }

  int Value() {
    corm::LockGuard<corm::Mutex> lock(mu_);
    return value_;
  }

 private:
  corm::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Value();
}
