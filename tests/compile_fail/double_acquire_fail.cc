// Compile-FAIL case: acquiring a CAPABILITY lock twice on one thread.
// SpinLock is not reentrant — a double lock() is a self-deadlock — and the
// analysis must reject it at compile time. The ctest entry inverts the
// build result (WILL_FAIL). See tests/compile_fail/CMakeLists.txt.

#include "common/spinlock.h"

int main() {
  corm::SpinLock lock;
  lock.lock();
  // BUG (deliberate): re-acquiring a capability already held.
  lock.lock();
  lock.unlock();
  lock.unlock();
  return 0;
}
