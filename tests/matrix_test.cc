// Full configuration matrix: compaction correctness must hold for every
// combination of remap strategy (§3.5), RPC correction strategy (§3.2.1),
// consistency protocol (§4.2.1), ID width and block size. One TEST_P sweep
// runs the same load→fragment→compact→verify cycle through all of them.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

namespace corm::core {
namespace {

using Params = std::tuple<sim::RemapStrategy, RpcCorrectionStrategy,
                          ConsistencyMode, int /*id_bits*/,
                          size_t /*block_pages*/>;

class ConfigMatrix : public ::testing::TestWithParam<Params> {};

TEST_P(ConfigMatrix, CompactionCycleIsCorrect) {
  const auto [remap, correction, consistency, id_bits, block_pages] =
      GetParam();
  CormConfig config;
  config.num_workers = 2;
  config.remap_strategy = remap;
  config.rpc_correction = correction;
  config.consistency = consistency;
  config.object_id_bits = id_bits;
  config.block_pages = block_pages;
  CormNode node(config);
  auto ctx = Context::Create(&node);

  // Pick a payload that yields several objects per block in every config.
  const uint32_t payload = 120;
  const size_t count = 64 * block_pages * 8;  // ~8 blocks' worth
  std::vector<GlobalAddr> addrs;
  std::vector<uint8_t> buf(payload);
  for (size_t i = 0; i < count; ++i) {
    auto addr = ctx->Alloc(payload);
    ASSERT_TRUE(addr.ok());
    PatternFill(i, buf.data(), payload);
    ASSERT_TRUE(ctx->Write(&*addr, buf.data(), payload).ok());
    addrs.push_back(*addr);
  }

  Rng rng(static_cast<uint64_t>(id_bits) * 131 + block_pages);
  std::vector<GlobalAddr> survivors;
  std::vector<size_t> idx;
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (rng.Chance(0.55)) {
      ASSERT_TRUE(ctx->Free(&addrs[i]).ok());
    } else {
      survivors.push_back(addrs[i]);
      idx.push_back(i);
    }
  }

  const uint64_t before = node.ActiveMemoryBytes();
  auto report = node.Compact(*node.ClassForPayload(payload));
  if (!report.ok()) {
    // The only legitimate refusal: ID space cannot address the class.
    ASSERT_EQ(report.status().code(), StatusCode::kNotSupported);
    const uint64_t slots =
        node.block_bytes() / node.classes().ClassSize(
                                 *node.ClassForPayload(payload));
    ASSERT_GT(slots, 1ULL << id_bits);
    return;
  }
  if (report->blocks_freed > 0) {
    EXPECT_LT(node.ActiveMemoryBytes(), before);
  }

  // Every survivor intact through both read paths.
  for (size_t i = 0; i < survivors.size(); ++i) {
    GlobalAddr one_sided = survivors[i];
    ASSERT_TRUE(
        ctx->ReadWithRecovery(&one_sided, buf.data(), payload).ok())
        << "config: remap=" << static_cast<int>(remap)
        << " corr=" << static_cast<int>(correction)
        << " cons=" << static_cast<int>(consistency) << " bits=" << id_bits
        << " pages=" << block_pages << " obj=" << i;
    EXPECT_TRUE(PatternCheck(idx[i], buf.data(), payload));
    GlobalAddr rpc = survivors[i];
    ASSERT_TRUE(ctx->Read(&rpc, buf.data(), payload).ok());
    EXPECT_TRUE(PatternCheck(idx[i], buf.data(), payload));
  }
  // And frees through old pointers drain everything.
  for (GlobalAddr& addr : survivors) {
    ASSERT_TRUE(ctx->Free(&addr).ok());
  }
  auto frag = node.Fragmentation();
  EXPECT_EQ(frag[*node.ClassForPayload(payload)].granted_bytes, 0u);
  EXPECT_EQ(node.vaddr_ghosts_for_testing(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(sim::RemapStrategy::kReregMr,
                          sim::RemapStrategy::kOdp,
                          sim::RemapStrategy::kOdpPrefetch),
        ::testing::Values(RpcCorrectionStrategy::kThreadMessaging,
                          RpcCorrectionStrategy::kBlockScan),
        ::testing::Values(ConsistencyMode::kCachelineVersions,
                          ConsistencyMode::kChecksum),
        ::testing::Values(6, 16),
        ::testing::Values<size_t>(1, 4)));

}  // namespace
}  // namespace corm::core
