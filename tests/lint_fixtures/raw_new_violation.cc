// corm-raw-new fixture: every allocating new/delete form must fire,
// including the shapes the old grep rule missed (multi-line operands,
// nothrow-new). Never compiled — linted by tests/lint_fixtures ctest.
#include <new>

struct Foo {
  int x = 0;
};

Foo* MakeOne() {
  return new Foo();  // EXPECT: corm-raw-new
}

Foo* MakeMany(unsigned n) {
  return new Foo[n];  // EXPECT: corm-raw-new
}

Foo* MakeNothrow() {
  // The nothrow form allocates even though it lexes like placement new.
  return new (std::nothrow) Foo();  // EXPECT: corm-raw-new
}

void DestroyOne(Foo* f) {
  delete f;  // EXPECT: corm-raw-new
}

void DestroyMany(Foo* f) {
  // Multi-line operand: invisible to a line-oriented grep.
  delete[]  // EXPECT: corm-raw-new
      f;
}
