// corm-remap-hazard fixture: clean control — the three sanctioned remedies.
// Epoch validation, re-lookup, and pinning each neutralize the hazard.
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
  unsigned long epoch() const;
};

struct CompactionEngine {
  void Step();
};

bool PinHeader(Block* b);  // CAS the header to kCompacting-excluded state

// Remedy 1: validate the directory epoch before trusting the pointer.
char ReadWithEpochCheck(Directory& dir, CompactionEngine& engine,
                        unsigned long addr) {
  unsigned long e0 = dir.epoch();
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  engine.Step();
  if (dir.epoch() == e0) return b->base[0];
  return 0;
}

// Remedy 2: re-lookup after the remap point; the fresh pointer is fine.
char ReadWithRelookup(Directory& dir, CompactionEngine& engine,
                      unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  engine.Step();
  e = dir.Lookup(addr);
  Block* b = e->block;
  return b->base[0];
}

// Remedy 3: pin the object before the remap point; compaction skips it.
char ReadPinned(Directory& dir, CompactionEngine& engine, unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  if (!PinHeader(b)) return 0;
  engine.Step();
  return b->base[0];
}

// No remap point at all: plain lookup-and-use stays silent.
char ReadDirect(Directory& dir, unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  return e->block->base[0];
}
