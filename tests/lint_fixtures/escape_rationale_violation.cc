// corm-escape-rationale fixture: escapes without a written justification.
// Same-line EXPECT comments would themselves count as rationales, so the
// expectations live here as headers instead:
// EXPECT-LINE 13: corm-escape-rationale
// EXPECT-LINE 16: corm-escape-rationale
// EXPECT-LINE 21: corm-escape-rationale
#include <atomic>

struct Obj {
  int x = 0;
};

Obj* Bare() { return new Obj(); }  // NOLINT(corm-raw-new)

void Spin(std::atomic<bool>& f) {
  // NOLINT(corm-unbounded-wait)
  while (!f.load()) {
  }
}

void Unlocked() NO_THREAD_SAFETY_ANALYSIS;
