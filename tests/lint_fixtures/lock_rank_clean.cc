// corm-lock-rank fixture: clean control — the sanctioned nesting shapes.
// Ascending ranks, scope-bounded release before a lower acquisition, and
// LockRankRegion re-entry at the held rank all stay silent.
enum class LockRank {
  kThreadAllocator = 200,
  kNodeDirectory = 300,
};

struct RankedSpinLock {
  explicit RankedSpinLock(LockRank rank);
};

template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};

struct LockRankRegion {
  explicit LockRankRegion(LockRank rank);
};

struct State {
  RankedSpinLock alloc_mu_{LockRank::kThreadAllocator};
  RankedSpinLock dir_mu_{LockRank::kNodeDirectory};
};

// Hierarchy order: strictly increasing ranks nest freely.
void Ascending(State& s) {
  LockGuard<RankedSpinLock> a(s.alloc_mu_);
  LockGuard<RankedSpinLock> b(s.dir_mu_);
}

// The inner guard dies with its scope; the lower rank afterwards is a
// sequential acquisition, not a nesting.
void ScopedRelease(State& s) {
  {
    LockGuard<RankedSpinLock> a(s.dir_mu_);
  }
  LockGuard<RankedSpinLock> b(s.alloc_mu_);
}

// Regions are reentrant: marking the held rank again is the documented
// LockRankRegion idiom for code that runs under a caller's lock.
void ReentrantRegion(State& s) {
  LockGuard<RankedSpinLock> a(s.dir_mu_);
  LockRankRegion r(LockRank::kNodeDirectory);
}
