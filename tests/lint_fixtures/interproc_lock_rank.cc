// corm-lock-rank interprocedural fixture: no inversion is visible inside
// any single function — the caller holds kNodeDirectory (300) and the
// helper acquires kThreadAllocator (200). Only the propagated may-acquire
// summary exposes the latent deadlock; --no-interproc must stay silent
// (asserted by the fixture runner).
enum class LockRank {
  kThreadAllocator = 200,
  kNodeDirectory = 300,
};

struct RankedSpinLock {
  explicit RankedSpinLock(LockRank rank);
};

template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};

struct Pool {
  RankedSpinLock alloc_mu_{LockRank::kThreadAllocator};
  RankedSpinLock dir_mu_{LockRank::kNodeDirectory};
};

void RefillFreeList(Pool& p) {
  LockGuard<RankedSpinLock> g(p.alloc_mu_);
}

void PublishBlock(Pool& p) {
  LockGuard<RankedSpinLock> g(p.dir_mu_);
  RefillFreeList(p);  // EXPECT: corm-lock-rank
}
