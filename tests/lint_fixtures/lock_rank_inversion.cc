// corm-lock-rank fixture: direct (same-function) hierarchy violations.
// The LockRank values mirror common/lock_rank.h's shape; the check reads
// whatever enum is in scope, so the fixture carries its own.
enum class LockRank {
  kThreadAllocator = 200,
  kAliasList = 260,
  kNodeDirectory = 300,
};

struct RankedSpinLock {
  explicit RankedSpinLock(LockRank rank);
};

template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};

struct LockRankRegion {
  explicit LockRankRegion(LockRank rank);
};

struct State {
  RankedSpinLock alloc_mu_{LockRank::kThreadAllocator};
  RankedSpinLock alias_mu_{LockRank::kAliasList};
  RankedSpinLock dir_mu_{LockRank::kNodeDirectory};
};

// Descending ranks: directory then alias deadlocks against any thread that
// nests them in hierarchy order.
void DirectInversion(State& s) {
  LockGuard<RankedSpinLock> a(s.dir_mu_);
  LockGuard<RankedSpinLock> b(s.alias_mu_);  // EXPECT: corm-lock-rank
}

// Equal rank is only reentrant for LockRankRegion: a second real lock of
// the same rank self-deadlocks on a spinlock.
void EqualRank(State& s) {
  LockGuard<RankedSpinLock> a(s.alloc_mu_);
  LockRankRegion r(LockRank::kThreadAllocator);  // region re-entry: fine
  LockGuard<RankedSpinLock> b(s.alloc_mu_);  // EXPECT: corm-lock-rank
}
