// corm-remap-hazard fixture: a raw pointer obtained from a block/object
// lookup, held live across a call that may advance compaction, then used
// without revalidation. The use site fires, not the remap call.
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
  unsigned long epoch() const;
};

struct CompactionEngine {
  void Step();
};

char ReadStale(Directory& dir, CompactionEngine& engine, unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  engine.Step();
  return b->base[0];  // EXPECT: corm-remap-hazard
}

char ReadStaleEntry(Directory& dir, CompactionEngine& engine,
                    unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  engine.Step();
  return e->block->base[0];  // EXPECT: corm-remap-hazard
}
