// corm-hotpath
// corm-hotpath-alloc fixture: suppressed sites with rationales. Also checks
// the legacy alias — NOLINT(corm-raw-new) must keep suppressing
// corm-hotpath-alloc so pre-existing escapes stay valid.
#include <vector>

struct Ring {
  std::vector<int> slots;

  explicit Ring(int n) {
    // One-time construction: the ring never grows after the ctor returns.
    slots.reserve(static_cast<unsigned>(n));  // NOLINT(corm-hotpath-alloc)
  }

  void Warm(int v) {
    slots.push_back(v);  // NOLINT(corm-raw-new) legacy alias, warmup only
  }
};
