// corm-lock-rank fixture: the direct inversion, suppressed with a written
// rationale — e.g. a trylock-with-backoff path where the inversion cannot
// block (the runtime's TryLock is rank-exempt for the same reason).
enum class LockRank {
  kAliasList = 260,
  kNodeDirectory = 300,
};

struct RankedSpinLock {
  explicit RankedSpinLock(LockRank rank);
};

template <typename M>
struct LockGuard {
  explicit LockGuard(M& m);
};

struct State {
  RankedSpinLock alias_mu_{LockRank::kAliasList};
  RankedSpinLock dir_mu_{LockRank::kNodeDirectory};
};

void InversionWithRationale(State& s) {
  LockGuard<RankedSpinLock> a(s.dir_mu_);
  // The alias list is only ever taken with try_lock on this path; a failed
  // acquisition falls back to the deferred queue instead of spinning.
  LockGuard<RankedSpinLock> b(s.alias_mu_);  // NOLINT(corm-lock-rank)
}
