// Rule-8 strict-mode fixture. The file NAME is the trigger: corm-tidy treats
// any path containing compaction_engine.cc as the engine itself, where
// NOLINT is not honored, sleeps are banned, and stop flags do not count as
// bounds — phase handlers poll once and re-enter on the next slice.
// EXPECT-LINE 16: corm-unbounded-wait
// EXPECT-LINE 21: corm-unbounded-wait
// EXPECT-LINE 22: corm-unbounded-wait
// EXPECT-LINE 28: corm-unbounded-wait
#include <atomic>
#include <chrono>
#include <thread>

void PhaseWaitForReaders(std::atomic<int>& readers) {
  // A stop flag would bound this anywhere else; not inside the engine.
  std::atomic<bool> stop_requested{false};
  while (readers.load() != 0 && !stop_requested.load()) {  // fires: strict
  }
}

void PhaseWaitSuppressed(std::atomic<bool>& drained) {
  // Attempted escape; strict mode flags the marker itself. NOLINT(corm-unbounded-wait)
  while (!drained.load()) {
  }
}

void PhaseBackoff() {
  // sleep_for inside a phase handler burns the compaction budget blind.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
