// corm-remap-hazard fixture: the same stale-use shape, suppressed with a
// written rationale — e.g. single-threaded test harnesses where the engine
// provably cannot remap the block under test.
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
};

struct CompactionEngine {
  void Step();
};

char ReadAfterStep(Directory& dir, CompactionEngine& engine,
                   unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  engine.Step();
  // Single-threaded harness: the block under test is full, and Step() only
  // relocates blocks on the compaction candidate list.
  return b->base[0];  // NOLINT(corm-remap-hazard)
}
