// corm-escape-rationale fixture: the same escapes as the violation fixture,
// each now carrying a real rationale — so nothing may fire. (This check has
// no suppression of its own: the rationale IS the fix.)
#include <atomic>

struct Obj {
  int x = 0;
};

// Arena handout: ownership transfers to the slab. NOLINT(corm-raw-new)
Obj* Bare() { return new Obj(); }

void Spin(std::atomic<bool>& f) {
  // Handshake with an in-process peer thread. NOLINT(corm-unbounded-wait)
  while (!f.load()) {
  }
}

// Caller holds the shard lock through a type the analysis cannot see.
void Unlocked() NO_THREAD_SAFETY_ANALYSIS;
