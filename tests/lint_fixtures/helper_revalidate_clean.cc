// corm-remap-hazard clean control for the interprocedural *revalidation*
// widening: `StillCurrent` carries no Validate/epoch spelling at the call
// site, but its body reads the directory epoch, so the summary marks it
// pins-or-validates and the call clears standing hazards. This is the
// false-positive the per-function pass would emit; v2 stays silent.
// (Deliberately not interproc_-prefixed: under --no-interproc this fixture
// WOULD fire — the summary is what makes it clean.)
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
  unsigned long epoch() const;
};

struct CompactionEngine {
  void Step();
};

bool StillCurrent(Directory& dir, unsigned long e0) {
  return dir.epoch() == e0;
}

char ReadWithHelperCheck(Directory& dir, CompactionEngine& engine,
                         unsigned long addr) {
  unsigned long e0 = dir.epoch();
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  engine.Step();
  if (!StillCurrent(dir, e0)) return 0;
  return b->base[0];
}
