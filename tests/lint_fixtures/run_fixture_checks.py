#!/usr/bin/env python3
"""Fixture harness for corm-tidy.

Four subcommands:

  fixtures <corm-tidy> <fixture-dir>
      Runs corm-tidy (token engine, --fallback-only, so results are
      identical on every host) over each fixture and asserts the emitted
      diagnostics match the fixture's expectations EXACTLY — no missing
      findings, no extras. Expectations are written in the fixtures:

        code;  // EXPECT: <check-id>       same-line marker
        // EXPECT-LINE <n>: <check-id>     header marker, for fixtures where
                                           a same-line comment would change
                                           the check's behavior

      Fixtures with no expectations (the *_nolint / *_clean controls) must
      produce zero diagnostics.

      Fixtures named interproc_* additionally re-run under --no-interproc
      and must then be SILENT: each one is a hazard the PR-6 per-function
      pass provably misses and only the call-graph summaries catch.

  audit <corm-tidy> <repo-root>
      Cross-checks `corm-tidy --list-hotpath` against the canonical hotpath
      contract in DESIGN.md section 7 (the list between the
      hotpath-contract-begin/end markers). A file carrying the marker but
      missing from the contract — or vice versa — fails the audit.

  audit-trees <corm-tidy> <fixture-dir>
      Pins `corm-tidy --audit` end to end against the two mini repo trees
      under the fixture dir: audit_tree_good must exit 0, audit_tree_bad
      must exit 1 and report each seeded violation class.

  wire-abi <corm-tidy> <repo-root>
      Regenerates the wire ABI (`--wire-abi --src <repo>/src`) and diffs it
      byte-for-byte against the committed golden
      tools/corm_tidy/wire_abi.json. Any drift in a wire struct's
      offset/size/alignment — or in the golden itself — fails.
"""

import re
import subprocess
import sys
from pathlib import Path

EXPECT_SAME = re.compile(r"//\s*EXPECT:\s*([a-z0-9-]+)")
EXPECT_LINE = re.compile(r"//\s*EXPECT-LINE\s+(\d+):\s*([a-z0-9-]+)")
# corm-tidy diagnostic: path:line:col: warning: msg [check-id]
DIAG = re.compile(r"^(.*?):(\d+):(\d+): warning: .* \[([a-z0-9-]+)\]$")


def expectations(path: Path):
    """Collect (line, check-id) pairs a fixture declares, as a multiset."""
    expected = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        m = EXPECT_LINE.search(text)
        if m:
            expected.append((int(m.group(1)), m.group(2)))
            continue
        m = EXPECT_SAME.search(text)
        if m:
            expected.append((lineno, m.group(1)))
    return sorted(expected)


def run_tidy(tidy: str, args):
    proc = subprocess.run(
        [tidy, *args], capture_output=True, text=True, check=False
    )
    if proc.returncode not in (0, 1):
        sys.exit(
            f"FATAL: corm-tidy exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def diags_for(tidy: str, fixture: Path, extra_args=()):
    proc = run_tidy(tidy, ["--fallback-only", *extra_args, str(fixture)])
    found = []
    for line in proc.stdout.splitlines():
        m = DIAG.match(line)
        if m:
            found.append((int(m.group(2)), m.group(4)))
    return sorted(found)


def cmd_fixtures(tidy: str, fixture_dir: Path) -> int:
    fixtures = sorted(fixture_dir.glob("*.cc"))
    if not fixtures:
        sys.exit(f"FATAL: no fixtures under {fixture_dir}")
    failures = 0
    for fx in fixtures:
        want = expectations(fx)
        got = diags_for(tidy, fx)
        if want == got:
            print(f"  OK   {fx.name}: {len(want)} expected diagnostic(s)")
        else:
            failures += 1
            print(f"  FAIL {fx.name}")
            for line, check in sorted(set(want) - set(got)):
                print(f"       missing: line {line} [{check}]")
            for line, check in sorted(set(got) - set(want)):
                print(f"       extra:   line {line} [{check}]")
            # Multiset mismatches with identical sets (count differences).
            if set(want) == set(got):
                print(f"       count mismatch: want {want} got {got}")
            continue
        # interproc_* fixtures document hazards only the call-graph summaries
        # expose: the PR-6 baseline (--no-interproc) must miss every one.
        if fx.name.startswith("interproc_"):
            baseline = diags_for(tidy, fx, ["--no-interproc"])
            if baseline:
                failures += 1
                print(f"  FAIL {fx.name}: --no-interproc should be silent "
                      f"(the hazard must need the summaries), got {baseline}")
            else:
                print(f"  OK   {fx.name}: silent under --no-interproc")
    print(f"{len(fixtures) - failures}/{len(fixtures)} fixtures pass")
    return 1 if failures else 0


CONTRACT = re.compile(
    r"<!-- hotpath-contract-begin -->(.*?)<!-- hotpath-contract-end -->",
    re.S,
)


def cmd_audit(tidy: str, repo_root: Path) -> int:
    design = (repo_root / "DESIGN.md").read_text()
    m = CONTRACT.search(design)
    if not m:
        sys.exit("FATAL: DESIGN.md has no hotpath-contract markers")
    contract = {
        ln.strip().lstrip("-").strip().strip("`")
        for ln in m.group(1).splitlines()
        if ln.strip().startswith("-")
    }
    proc = run_tidy(
        tidy, ["--list-hotpath", "--src", str(repo_root / "src")]
    )
    marked = set()
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line:
            marked.add(str(Path(line).resolve().relative_to(repo_root.resolve())))
    ok = True
    for path in sorted(marked - contract):
        ok = False
        print(f"  FAIL {path} carries // corm-hotpath but is absent from "
              f"the DESIGN.md section 7 contract")
    for path in sorted(contract - marked):
        ok = False
        print(f"  FAIL {path} is in the DESIGN.md section 7 contract but "
              f"does not carry the // corm-hotpath marker")
    if ok:
        print(f"  OK   hotpath contract: {len(marked)} file(s) in sync")
    return 0 if ok else 1


def cmd_audit_trees(tidy: str, fixture_dir: Path) -> int:
    ok = True
    good = subprocess.run(
        [tidy, "--audit", "--root", str(fixture_dir / "audit_tree_good")],
        capture_output=True, text=True, check=False,
    )
    if good.returncode != 0:
        ok = False
        print(f"  FAIL audit_tree_good: expected exit 0, got "
              f"{good.returncode}\n{good.stdout}{good.stderr}")
    else:
        print("  OK   audit_tree_good: --audit exits 0")
    bad = subprocess.run(
        [tidy, "--audit", "--root", str(fixture_dir / "audit_tree_bad")],
        capture_output=True, text=True, check=False,
    )
    if bad.returncode != 1:
        ok = False
        print(f"  FAIL audit_tree_bad: expected exit 1, got "
              f"{bad.returncode}\n{bad.stdout}{bad.stderr}")
    # One representative FAIL per violation class the bad tree seeds.
    seeded = [
        "`qp.break` (kQpBreak) is exercised by no test",
        "`qp.break` is missing from the DESIGN.md fault-site table",
        "`node.crash`, which is not a fault_sites constant",
        "`rpc_writes` has no NodeStats snapshot field",
        "`rpc_writes` is not summed in CormNode::stats()",
        "`rpc_writes` is missing from the EXPERIMENTS.md stats schema",
        "`total_ops`, which is not a NodeStatShard counter",
    ]
    for needle in seeded:
        if not any(needle in line for line in bad.stdout.splitlines()):
            ok = False
            print(f"  FAIL audit_tree_bad: seeded violation not reported: "
                  f"{needle}")
    if bad.returncode == 1 and ok:
        print(f"  OK   audit_tree_bad: --audit exits 1 with all "
              f"{len(seeded)} seeded violation classes reported")
    return 0 if ok else 1


def cmd_wire_abi(tidy: str, repo_root: Path) -> int:
    golden_path = repo_root / "tools" / "corm_tidy" / "wire_abi.json"
    golden = golden_path.read_text()
    proc = subprocess.run(
        [tidy, "--wire-abi", "--src", str(repo_root / "src")],
        capture_output=True, text=True, check=False,
    )
    if proc.returncode != 0:
        print(f"  FAIL --wire-abi exited {proc.returncode}\n{proc.stderr}")
        return 1
    if proc.stdout != golden:
        print(f"  FAIL wire ABI drifted from {golden_path}")
        import difflib
        sys.stdout.writelines(difflib.unified_diff(
            golden.splitlines(keepends=True),
            proc.stdout.splitlines(keepends=True),
            fromfile="wire_abi.json (golden)", tofile="--wire-abi (current)",
        ))
        print("       If the change is intentional, regenerate the golden:\n"
              "       corm-tidy --wire-abi --src src > "
              "tools/corm_tidy/wire_abi.json")
        return 1
    print("  OK   wire ABI matches the committed golden")
    return 0


COMMANDS = {
    "fixtures": cmd_fixtures,
    "audit": cmd_audit,
    "audit-trees": cmd_audit_trees,
    "wire-abi": cmd_wire_abi,
}


def main() -> int:
    if len(sys.argv) != 4 or sys.argv[1] not in COMMANDS:
        sys.exit(
            "usage: run_fixture_checks.py fixtures    <corm-tidy> <fixture-dir>\n"
            "       run_fixture_checks.py audit       <corm-tidy> <repo-root>\n"
            "       run_fixture_checks.py audit-trees <corm-tidy> <fixture-dir>\n"
            "       run_fixture_checks.py wire-abi    <corm-tidy> <repo-root>"
        )
    return COMMANDS[sys.argv[1]](sys.argv[2], Path(sys.argv[3]))


if __name__ == "__main__":
    sys.exit(main())
