#!/usr/bin/env python3
"""Fixture harness for corm-tidy.

Two subcommands:

  fixtures <corm-tidy> <fixture-dir>
      Runs corm-tidy (token engine, --fallback-only, so results are
      identical on every host) over each fixture and asserts the emitted
      diagnostics match the fixture's expectations EXACTLY — no missing
      findings, no extras. Expectations are written in the fixtures:

        code;  // EXPECT: <check-id>       same-line marker
        // EXPECT-LINE <n>: <check-id>     header marker, for fixtures where
                                           a same-line comment would change
                                           the check's behavior

      Fixtures with no expectations (the *_nolint / *_clean controls) must
      produce zero diagnostics.

  audit <corm-tidy> <repo-root>
      Cross-checks `corm-tidy --list-hotpath` against the canonical hotpath
      contract in DESIGN.md section 7 (the list between the
      hotpath-contract-begin/end markers). A file carrying the marker but
      missing from the contract — or vice versa — fails the audit.
"""

import re
import subprocess
import sys
from pathlib import Path

EXPECT_SAME = re.compile(r"//\s*EXPECT:\s*([a-z0-9-]+)")
EXPECT_LINE = re.compile(r"//\s*EXPECT-LINE\s+(\d+):\s*([a-z0-9-]+)")
# corm-tidy diagnostic: path:line:col: warning: msg [check-id]
DIAG = re.compile(r"^(.*?):(\d+):(\d+): warning: .* \[([a-z0-9-]+)\]$")


def expectations(path: Path):
    """Collect (line, check-id) pairs a fixture declares, as a multiset."""
    expected = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        m = EXPECT_LINE.search(text)
        if m:
            expected.append((int(m.group(1)), m.group(2)))
            continue
        m = EXPECT_SAME.search(text)
        if m:
            expected.append((lineno, m.group(1)))
    return sorted(expected)


def run_tidy(tidy: str, args):
    proc = subprocess.run(
        [tidy, *args], capture_output=True, text=True, check=False
    )
    if proc.returncode not in (0, 1):
        sys.exit(
            f"FATAL: corm-tidy exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def diags_for(tidy: str, fixture: Path):
    proc = run_tidy(tidy, ["--fallback-only", str(fixture)])
    found = []
    for line in proc.stdout.splitlines():
        m = DIAG.match(line)
        if m:
            found.append((int(m.group(2)), m.group(4)))
    return sorted(found)


def cmd_fixtures(tidy: str, fixture_dir: Path) -> int:
    fixtures = sorted(fixture_dir.glob("*.cc"))
    if not fixtures:
        sys.exit(f"FATAL: no fixtures under {fixture_dir}")
    failures = 0
    for fx in fixtures:
        want = expectations(fx)
        got = diags_for(tidy, fx)
        if want == got:
            print(f"  OK   {fx.name}: {len(want)} expected diagnostic(s)")
            continue
        failures += 1
        print(f"  FAIL {fx.name}")
        for line, check in sorted(set(want) - set(got)):
            print(f"       missing: line {line} [{check}]")
        for line, check in sorted(set(got) - set(want)):
            print(f"       extra:   line {line} [{check}]")
        # Multiset mismatches with identical sets (count differences).
        if set(want) == set(got):
            print(f"       count mismatch: want {want} got {got}")
    print(f"{len(fixtures) - failures}/{len(fixtures)} fixtures pass")
    return 1 if failures else 0


CONTRACT = re.compile(
    r"<!-- hotpath-contract-begin -->(.*?)<!-- hotpath-contract-end -->",
    re.S,
)


def cmd_audit(tidy: str, repo_root: Path) -> int:
    design = (repo_root / "DESIGN.md").read_text()
    m = CONTRACT.search(design)
    if not m:
        sys.exit("FATAL: DESIGN.md has no hotpath-contract markers")
    contract = {
        ln.strip().lstrip("-").strip().strip("`")
        for ln in m.group(1).splitlines()
        if ln.strip().startswith("-")
    }
    proc = run_tidy(
        tidy, ["--list-hotpath", "--src", str(repo_root / "src")]
    )
    marked = set()
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line:
            marked.add(str(Path(line).resolve().relative_to(repo_root.resolve())))
    ok = True
    for path in sorted(marked - contract):
        ok = False
        print(f"  FAIL {path} carries // corm-hotpath but is absent from "
              f"the DESIGN.md section 7 contract")
    for path in sorted(contract - marked):
        ok = False
        print(f"  FAIL {path} is in the DESIGN.md section 7 contract but "
              f"does not carry the // corm-hotpath marker")
    if ok:
        print(f"  OK   hotpath contract: {len(marked)} file(s) in sync")
    return 0 if ok else 1


def main() -> int:
    if len(sys.argv) != 4 or sys.argv[1] not in ("fixtures", "audit"):
        sys.exit(
            "usage: run_fixture_checks.py fixtures <corm-tidy> <fixture-dir>\n"
            "       run_fixture_checks.py audit    <corm-tidy> <repo-root>"
        )
    mode, tidy, target = sys.argv[1], sys.argv[2], Path(sys.argv[3])
    return cmd_fixtures(tidy, target) if mode == "fixtures" else cmd_audit(
        tidy, target
    )


if __name__ == "__main__":
    sys.exit(main())
