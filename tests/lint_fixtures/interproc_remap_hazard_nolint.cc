// corm-remap-hazard interprocedural fixture: the hidden-remap shape from
// interproc_remap_hazard.cc, suppressed with a written rationale. NOLINT
// must silence the summary-widened diagnostic exactly like a direct one.
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
};

struct CompactionEngine {
  void Step();
};

void MaybeCompact(CompactionEngine& engine) {
  engine.Step();
}

char ReadAcrossHelper(Directory& dir, CompactionEngine& engine,
                      unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  MaybeCompact(engine);
  // Single-threaded harness: the helper's Step() cannot relocate the full
  // block under test.
  return b->base[0];  // NOLINT(corm-remap-hazard)
}
