// Rule-8 strict-mode fixture for the remote sync schemes. The file NAME is
// the trigger: corm-tidy treats any path containing cas_lock.cc (or
// src/sync/) as strict — a CAS spinlock spinning on a crashed holder's lock
// word is exactly the hang rule 8 bans, so every wait must run under a
// RetryPolicy budget and a lease Deadline. Stop flags do not bound strict
// waits, sleeps are banned, and NOLINT is not honored.
// EXPECT-LINE 19: corm-unbounded-wait
// EXPECT-LINE 24: corm-unbounded-wait
// EXPECT-LINE 25: corm-unbounded-wait
// EXPECT-LINE 31: corm-unbounded-wait
#include <atomic>
#include <chrono>
#include <thread>

void SpinUntilFree(std::atomic<unsigned long>& lock_word) {
  std::atomic<bool> stop_requested{false};  // stop flags don't bound strict
  // A crashed holder never clears the held bit: this loop spins forever
  // instead of stealing via the lease path.
  while (lock_word.load() != 0 && !stop_requested.load()) {  // fires: strict
  }
}

void SpinSuppressed(std::atomic<bool>& held) {
  // Attempted escape; strict mode flags the marker itself. NOLINT(corm-unbounded-wait)
  while (held.load()) {
  }
}

void BackoffSleep() {
  // Lock backoff must go through sim::Pace, never a real sleep.
  std::this_thread::sleep_for(std::chrono::microseconds(10));
}
