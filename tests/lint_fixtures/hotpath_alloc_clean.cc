// corm-hotpath-alloc fixture: clean control. This file has NO hotpath
// marker on line 1, so the check is out of scope — the very same
// allocations that fire in the violation fixture must stay silent here.
#include <functional>
#include <vector>

void ControlPlaneSetup(std::vector<int>* table, int n) {
  table->reserve(static_cast<unsigned>(n));
  for (int i = 0; i < n; ++i) table->push_back(i);
  std::function<void()> cb = [table] { table->clear(); };
  cb();
}
