// corm-unbounded-wait fixture: suppressed sites. Both the canonical id and
// the legacy NOLINT(corm-spin-wait) alias from lint.sh rule 5 must work.
#include <atomic>

void JoinBarrier(std::atomic<int>& arrived, int parties) {
  // Startup barrier: all parties are local threads, so a missing arrival
  // means a bug we want to hang loudly on. NOLINT(corm-unbounded-wait)
  while (arrived.load() != parties) {
  }
}

void DrainSequencer(std::atomic<unsigned>& head, unsigned until) {
  while (head.load() < until) {  // NOLINT(corm-spin-wait) test-only drain
  }
}
