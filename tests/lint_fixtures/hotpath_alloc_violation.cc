// corm-hotpath
// corm-hotpath-alloc fixture: explicit allocation calls, implicit container
// growth, and std::function construction must all fire inside a file that
// carries the hotpath marker above.
#include <functional>
#include <string>
#include <vector>

struct Request {
  std::vector<int> payload;
  std::string tag;
};

void HandleOp(Request* req, int v, const char* suffix) {
  auto buf = std::make_unique<char[]>(64);  // EXPECT: corm-hotpath-alloc
  void* raw = malloc(64);                   // EXPECT: corm-hotpath-alloc
  (void)buf;
  (void)raw;

  // Implicit allocations: amortized growth is still growth on the hot path.
  req->payload.push_back(v);   // EXPECT: corm-hotpath-alloc
  req->payload.resize(128);    // EXPECT: corm-hotpath-alloc
  req->tag.append(suffix);     // EXPECT: corm-hotpath-alloc

  // Capturing lambdas converted to std::function heap-allocate the closure.
  std::function<void()> cb = [req] { req->payload.clear(); };  // EXPECT: corm-hotpath-alloc
  cb();
}
