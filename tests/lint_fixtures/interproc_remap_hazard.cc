// corm-remap-hazard interprocedural fixture (DESIGN.md section 10): the
// remap point hides one call away. `MaybeCompact` is not a remap-root name,
// but its body calls `engine.Step()`, so the v2 call-graph summary marks it
// may-advance-remap and the call site poisons the held pointer. The PR-6
// per-function pass provably misses this shape — the fixture runner re-lints
// every interproc_* fixture under --no-interproc and asserts silence.
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
};

struct CompactionEngine {
  void Step();
};

void MaybeCompact(CompactionEngine& engine) {
  engine.Step();
}

char ReadAcrossHelper(Directory& dir, CompactionEngine& engine,
                      unsigned long addr) {
  Entry* e = dir.Lookup(addr);
  Block* b = e->block;
  MaybeCompact(engine);
  return b->base[0];  // EXPECT: corm-remap-hazard
}
