// Mini fault injector for the --audit fixture tree.
#pragma once

namespace fault_sites {
inline constexpr const char* kRpcDelay = "rpc.delay";
inline constexpr const char* kQpBreak = "qp.break";
}  // namespace fault_sites
