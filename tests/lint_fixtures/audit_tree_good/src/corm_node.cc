// Mini aggregation for the --audit fixture tree: every shard counter is
// summed into the snapshot with the `out.N += s.N` shape the audit keys on.
#include "corm_node.h"

NodeStats Stats(const NodeStatShard* shards, int n) {
  NodeStats out;
  for (int i = 0; i < n; ++i) {
    const NodeStatShard& s = shards[i];
    out.rpc_reads += s.rpc_reads.Load();
    out.rpc_writes += s.rpc_writes.Load();
  }
  return out;
}
