// Mini node stats for the --audit fixture tree.
#pragma once

#include <cstdint>

struct StatCounter {
  void Add(uint64_t d);
  uint64_t Load() const;
};

struct NodeStatShard {
  StatCounter rpc_reads;
  StatCounter rpc_writes;
};

struct NodeStats {
  uint64_t rpc_reads = 0;
  uint64_t rpc_writes = 0;
};
