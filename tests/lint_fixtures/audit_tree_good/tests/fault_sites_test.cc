// Mini test for the --audit fixture tree: exercises every fault site, one
// by constant name and one by its literal site string.
#include "../src/fault_injector.h"

void Arm(const char* site);

void ExerciseAll() {
  Arm(fault_sites::kRpcDelay);
  Arm("qp.break");
}
