// Rule-8 strict-mode fixture for the replicated-log ship path. The file
// NAME is the trigger: corm-tidy treats any path containing log_shipper.cc
// (or replication.cc) as strict, overriding the src/rdma/ wait exemption —
// a blocked shipper stalls every replicated write behind it, so waits must
// be Deadline-bounded, sleeps are banned, stop flags do not count, and
// NOLINT is not honored.
// EXPECT-LINE 18: corm-unbounded-wait
// EXPECT-LINE 23: corm-unbounded-wait
// EXPECT-LINE 24: corm-unbounded-wait
// EXPECT-LINE 30: corm-unbounded-wait
#include <atomic>
#include <chrono>
#include <thread>

void AwaitAppliedForever(std::atomic<unsigned long>& applied,
                         unsigned long seq) {
  std::atomic<bool> stop_requested{false};  // stop flags don't bound strict
  while (applied.load() < seq && !stop_requested.load()) {  // fires: strict
  }
}

void AwaitAckSuppressed(std::atomic<bool>& acked) {
  // Attempted escape; strict mode flags the marker itself. NOLINT(corm-unbounded-wait)
  while (!acked.load()) {
  }
}

void ShipBackoff() {
  // A sleeping shipper holds the write's quorum deadline hostage.
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}
