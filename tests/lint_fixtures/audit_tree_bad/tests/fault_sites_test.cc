// Mini test for the failing --audit fixture tree: qp.break is exercised by
// nothing.
#include "../src/fault_injector.h"

void Arm(const char* site);

void ExerciseSome() {
  Arm(fault_sites::kRpcDelay);
}
