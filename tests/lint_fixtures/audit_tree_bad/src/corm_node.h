// Mini node stats for the failing --audit fixture tree: rpc_writes has no
// snapshot mirror.
#pragma once

#include <cstdint>

struct StatCounter {
  void Add(uint64_t d);
  uint64_t Load() const;
};

struct NodeStatShard {
  StatCounter rpc_reads;
  StatCounter rpc_writes;
};

struct NodeStats {
  uint64_t rpc_reads = 0;
};
