// Mini aggregation for the failing --audit fixture tree: rpc_writes is
// dropped on the floor, the regression the audit exists to catch.
#include "corm_node.h"

NodeStats Stats(const NodeStatShard* shards, int n) {
  NodeStats out;
  for (int i = 0; i < n; ++i) {
    const NodeStatShard& s = shards[i];
    out.rpc_reads += s.rpc_reads.Load();
  }
  return out;
}
