// corm-raw-new fixture: clean control — placement new, deleted functions,
// operator declarations, and comment/string mentions must all stay silent.
// The old grep rule false-positived on several of these.
#include <cstddef>

struct Pod {
  int x = 0;

  // Deleted functions are not delete expressions.
  Pod(const Pod&) = delete;
  Pod& operator=(const Pod&) = delete;

  // Allocation-function *declarations* are not allocation sites.
  static void* operator new(std::size_t size);
  static void operator delete(void* p);
};

// Placement new constructs in place; it does not allocate.
Pod* ConstructAt(void* buf) {
  return new (buf) Pod;
}

// Comment mentions must not fire: we could new Foo() here, or delete p.
/* Block comments either: new Pod[8]; delete[] arr; */
const char* Describe() {
  return "new Pod() and delete p inside a string literal";
}
