// corm-raw-new fixture: suppressed sites — every escape carries a written
// rationale, so neither corm-raw-new nor corm-escape-rationale may fire.
struct Ctx {
  static Ctx* Make();
  void Release();

 private:
  Ctx() = default;
};

Ctx* Ctx::Make() {
  // Private constructor: make_unique cannot reach it. NOLINT(corm-raw-new)
  return new Ctx();
}

void Ctx::Release() {
  delete this;  // NOLINT(corm-raw-new) refcount reached zero: sole owner
}
