// Lexer fixture: backslash continuations keep multi-line preprocessor
// directives out of the token stream, literal prefixes keep strings as
// strings, and C++14 digit separators keep one number one token. Each
// construct below turns into a spurious corm-raw-new — or swallows the
// real one at the bottom — if the lexer regresses.
#include <new>

// The continued line is still part of the directive: its `new` must not
// lex as code.
#define MAKE_THING(type, arg) \
  new type(arg)

// Prefixed raw string: an unrecognized u8R prefix would end the string at
// the first embedded quote and leak `new int` into the token stream.
const char* kRawMsg = u8R"(say "new int" without firing)";

// Plain prefixed literals: contents stay opaque.
const wchar_t* kWideMsg = L"delete nothing";
const char* kU8Msg = u8"new is just prose here";

// The probe-word idiom from rdma/repl_record.h: splitting at the digit
// separator would lex the tail as an unterminated char literal and eat the
// rest of the file.
unsigned long long Probe() {
  return 0x12345678'beefaaabULL;
}

int* StillDetected() {
  return new int(7);  // EXPECT: corm-raw-new
}
