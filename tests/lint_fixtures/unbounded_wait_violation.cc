// corm-unbounded-wait fixture: atomic-polling loops with no Deadline and no
// stop flag must fire — a dead peer turns them into a hang.
#include <atomic>

struct Flags {
  std::atomic<bool> done{false};
};

void WaitForCompletion(Flags* f) {
  while (!f->done.load(std::memory_order_acquire)) {  // EXPECT: corm-unbounded-wait
  }
}

void WaitInline(std::atomic<int>& seq, int want) {
  while (seq.load() != want) {  // EXPECT: corm-unbounded-wait
    __builtin_ia32_pause();
  }
}
