// corm-escape-rationale fixture: clean control — no escape hatches at all,
// and prose that merely *mentions* NOLINT policy (like this sentence about
// writing NOLINT rationales) must not confuse the scanner.
#include <memory>

struct Obj {
  int x = 0;
};

std::unique_ptr<Obj> Make() { return std::make_unique<Obj>(); }
