// corm-unbounded-wait fixture: clean control — a Deadline in the condition,
// a Deadline check in the body, and a run-loop stop flag are each a bound.
#include <atomic>

struct Deadline {
  bool expired() const;
};

int WaitDeadlineInCondition(std::atomic<bool>& done, const Deadline& deadline) {
  while (!done.load() && !deadline.expired()) {
  }
  return done.load() ? 0 : -1;
}

int WaitDeadlineInBody(std::atomic<bool>& done, const Deadline& deadline) {
  while (!done.load()) {
    if (deadline.expired()) return -1;
  }
  return 0;
}

void RunLoop(std::atomic<bool>& stop_requested) {
  // A service loop polling its stop flag is bounded by the node's lifetime.
  while (!stop_requested.load(std::memory_order_acquire)) {
  }
}
