// corm-remap-hazard interprocedural fixture: the *taint source* hides one
// call away. `FindEntryForAddr` is not a lookup-root name, but it returns
// `dir.Lookup(...)` directly, so the v2 summary marks it
// returns-lookup-tainted-pointer and the assignment taints `e`. The remap
// point itself (`Step`) is a plain root; only the taint is interprocedural,
// so --no-interproc stays silent (asserted by the runner).
struct Block {
  char* base;
};

struct Entry {
  Block* block;
};

struct Directory {
  Entry* Lookup(unsigned long addr);
};

struct CompactionEngine {
  void Step();
};

Entry* FindEntryForAddr(Directory& dir, unsigned long addr) {
  return dir.Lookup(addr);
}

char ReadViaHelper(Directory& dir, CompactionEngine& engine,
                   unsigned long addr) {
  Entry* e = FindEntryForAddr(dir, addr);
  engine.Step();
  return e->block->base[0];  // EXPECT: corm-remap-hazard
}
