// Tests for the one-sided-write RPC ingress ring (paper §2.2.2 / HERD
// style): messages written straight into server memory with RDMA writes,
// consumed by a polling thread.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "rdma/queue_pair.h"
#include "rdma/rnic.h"
#include "rdma/write_ring.h"
#include "sim/address_space.h"
#include "sim/physical_memory.h"

namespace corm::rdma {
namespace {

class WriteRingTest : public ::testing::Test {
 protected:
  WriteRingTest() : space_(&phys_), rnic_(&space_, sim::LatencyModel{}) {}

  sim::PhysicalMemory phys_;
  sim::AddressSpace space_;
  Rnic rnic_;
};

TEST_F(WriteRingTest, PushPollRoundTrip) {
  auto ring = WriteRing::Create(&space_, &rnic_, /*slots=*/8,
                                /*slot_bytes=*/64);
  ASSERT_TRUE(ring.ok());
  QueuePair qp(&rnic_);
  WriteRingProducer producer(&qp, ring->base(), ring->r_key(), ring->slots(),
                             ring->slot_bytes());
  const std::string msg = "pushed via one-sided write";
  ASSERT_TRUE(producer.Push(Slice(msg)).ok());
  Buffer out;
  ASSERT_TRUE(ring->Poll(&out));
  EXPECT_EQ(std::string(out.begin(), out.end()), msg);
  EXPECT_FALSE(ring->Poll(&out));  // drained
}

TEST_F(WriteRingTest, FifoAcrossWraparound) {
  auto ring = WriteRing::Create(&space_, &rnic_, 4, 64);
  ASSERT_TRUE(ring.ok());
  QueuePair qp(&rnic_);
  WriteRingProducer producer(&qp, ring->base(), ring->r_key(), ring->slots(),
                             ring->slot_bytes());
  Buffer out;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      const std::string msg =
          "m" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(producer.Push(Slice(msg)).ok());
    }
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring->Poll(&out));
      EXPECT_EQ(std::string(out.begin(), out.end()),
                "m" + std::to_string(round) + "-" + std::to_string(i));
      producer.GrantCredit();
    }
  }
}

TEST_F(WriteRingTest, CreditsPreventOverrun) {
  auto ring = WriteRing::Create(&space_, &rnic_, 2, 64);
  ASSERT_TRUE(ring.ok());
  QueuePair qp(&rnic_);
  WriteRingProducer producer(&qp, ring->base(), ring->r_key(), ring->slots(),
                             ring->slot_bytes());
  ASSERT_TRUE(producer.Push(Slice("a", 1)).ok());
  ASSERT_TRUE(producer.Push(Slice("b", 1)).ok());
  // Without credits the third push must not clobber unconsumed slots.
  EXPECT_EQ(producer.Push(Slice("c", 1)).code(), StatusCode::kNetworkError);
  Buffer out;
  ASSERT_TRUE(ring->Poll(&out));
  producer.GrantCredit();
  EXPECT_TRUE(producer.Push(Slice("c", 1)).ok());
}

TEST_F(WriteRingTest, OversizedMessageRejected) {
  auto ring = WriteRing::Create(&space_, &rnic_, 4, 64);
  ASSERT_TRUE(ring.ok());
  QueuePair qp(&rnic_);
  WriteRingProducer producer(&qp, ring->base(), ring->r_key(), ring->slots(),
                             ring->slot_bytes());
  std::string big(200, 'x');
  EXPECT_EQ(producer.Push(Slice(big)).code(), StatusCode::kInvalidArgument);
}

TEST_F(WriteRingTest, ConcurrentProducerAndPoller) {
  auto ring = WriteRing::Create(&space_, &rnic_, 64, 128);
  ASSERT_TRUE(ring.ok());
  QueuePair qp(&rnic_);
  WriteRingProducer producer(&qp, ring->base(), ring->r_key(), ring->slots(),
                             ring->slot_bytes());
  constexpr int kMessages = 5000;
  std::atomic<int> consumed{0};
  std::atomic<int> credits{0};

  std::thread poller([&] {
    Buffer out;
    int expect = 0;
    while (expect < kMessages) {
      if (!ring->Poll(&out)) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(std::string(out.begin(), out.end()),
                "msg-" + std::to_string(expect));
      ++expect;
      consumed.fetch_add(1);
      credits.fetch_add(1);
    }
  });

  for (int i = 0; i < kMessages; ++i) {
    const std::string msg = "msg-" + std::to_string(i);
    for (;;) {
      while (credits.load() > 0) {
        producer.GrantCredit();
        credits.fetch_sub(1);
      }
      Status st = producer.Push(Slice(msg));
      if (st.ok()) break;
      ASSERT_EQ(st.code(), StatusCode::kNetworkError);
      std::this_thread::yield();
    }
  }
  poller.join();
  EXPECT_EQ(consumed.load(), kMessages);
}

TEST_F(WriteRingTest, DestructorReleasesMemory) {
  const size_t frames_before = phys_.live_frames();
  {
    auto ring = WriteRing::Create(&space_, &rnic_, 1024, 256);
    ASSERT_TRUE(ring.ok());
    EXPECT_GT(phys_.live_frames(), frames_before);
  }
  EXPECT_EQ(phys_.live_frames(), frames_before);
}

}  // namespace
}  // namespace corm::rdma
