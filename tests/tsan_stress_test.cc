// TSan-targeted stress regression (ctest -L tsan): eight client threads
// hammer alloc/free/write/read through a node whose eight workers each
// mutate their own ThreadAllocator, while a control thread forces repeated
// compactions (block ownership hand-offs between workers and the leader)
// and runs the full invariant audit. Under CORM_SANITIZE=thread this
// exercises every annotated hand-off: spinlocks, the MPMC inbox, block
// owner transfer, the seqlock read protocol, and the ranked directory
// locks. The assertions also make it a functional stress test in plain
// builds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mpmc_queue.h"
#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "rdma/rpc_transport.h"

namespace corm::core {
namespace {

constexpr int kClients = 8;
constexpr uint32_t kPayload = 48;
constexpr int kOpsPerClient = 400;

CormConfig Config() {
  CormConfig config;
  config.num_workers = kClients;
  config.block_pages = 1;
  // Compact aggressively so ownership transfer happens mid-traffic.
  config.fragmentation_threshold = 1.01;
  config.collection_max_occupancy = 1.0;
  return config;
}

TEST(TsanStressTest, AllocFreeChurnWithConcurrentCompaction) {
  CormNode node(Config());
  const uint32_t class_idx = *node.ClassForPayload(kPayload);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed_ops{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&node, c, &completed_ops] {
      auto ctx = Context::Create(&node);
      Rng rng(0x5eed + static_cast<uint64_t>(c));
      std::vector<GlobalAddr> live;
      std::vector<uint8_t> buf(kPayload);
      for (int op = 0; op < kOpsPerClient; ++op) {
        const uint64_t dice = rng.Next() % 100;
        if (live.empty() || dice < 40) {
          auto addr = ctx->Alloc(kPayload);
          ASSERT_TRUE(addr.ok()) << addr.status();
          PatternFill(static_cast<uint64_t>(op), buf.data(), kPayload);
          Status st = Status::OK();
          for (int attempt = 0; attempt < 64; ++attempt) {
            st = ctx->Write(&*addr, buf.data(), kPayload);
            if (!st.IsObjectLocked()) break;  // compaction holds the object
            std::this_thread::yield();
          }
          ASSERT_TRUE(st.ok() || st.IsObjectLocked()) << st;
          live.push_back(*addr);
        } else if (dice < 70) {
          const size_t pick = rng.Next() % live.size();
          Status st = ctx->ReadWithRecovery(&live[pick], buf.data(), kPayload);
          // The object may be mid-move; recovery retries, so only a clean
          // success or a still-locked verdict is acceptable.
          ASSERT_TRUE(st.ok() || st.IsObjectLocked()) << st;
        } else {
          const size_t pick = rng.Next() % live.size();
          Status st = ctx->Free(&live[pick]);
          ASSERT_TRUE(st.ok() || st.IsObjectLocked()) << st;
          if (st.ok()) {
            live[pick] = live.back();
            live.pop_back();
          }
        }
        completed_ops.fetch_add(1, std::memory_order_relaxed);
      }
      // Drain: frees also exercise ghost release + empty-block destruction.
      for (GlobalAddr& addr : live) {
        for (int attempt = 0; attempt < 4096; ++attempt) {
          Status st = ctx->Free(&addr);
          if (st.ok()) break;
          ASSERT_TRUE(st.IsObjectLocked()) << st;
          std::this_thread::yield();
        }
      }
    });
  }

  // Control thread: force compactions + audits through the whole run.
  std::thread control([&node, class_idx, &stop] {
    uint64_t compactions = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto report = node.Compact(class_idx);
      if (report.ok()) ++compactions;
      Status audit = node.Audit();
      EXPECT_TRUE(audit.ok()) << audit;
      std::this_thread::yield();
    }
    EXPECT_GT(compactions, 0u) << "compaction never ran during the stress";
  });

  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  control.join();

  EXPECT_EQ(completed_ops.load(),
            static_cast<uint64_t>(kClients) * kOpsPerClient);
  // Everything was freed: the final audit must pass and no thread may have
  // leaked a rank on the lock stack.
  Status audit = node.Audit();
  EXPECT_TRUE(audit.ok()) << audit;
  EXPECT_EQ(LockRankTracker::Depth(), 0);
}

// The message pool's two recycle paths racing (DESIGN.md §7.2): on the
// normal path the client drops the last reference and the message recycles
// into the *client's* freelist; on the abandoned path the client Unrefs
// without waiting (a timeout) while the server is still filling the
// response, so the server's completing Unref is the last one and recycles
// into the *worker's* freelist. TSan must see the acq_rel refcount as the
// only thing ordering the loser's field resets against the winner's final
// accesses — and must see no unsynchronized reuse, because an abandoned
// message can only re-enter circulation from the thread that shelved it.
TEST(TsanStressTest, MessagePoolRecycleVsAbandonedUnref) {
  rdma::RpcMessagePool::SetEnabled(true);
  constexpr int kRounds = 20'000;

  MpmcQueue<rdma::RpcMessage*> ring(1024);
  std::atomic<bool> stop{false};

  // Server: pop, touch the request, write a response, publish, Unref.
  std::thread server([&] {
    // Run loop bounded by the stop flag. NOLINT(corm-spin-wait)
    while (!stop.load(std::memory_order_acquire)) {
      if (auto msg = ring.TryPop()) {
        rdma::RpcMessage* m = *msg;
        ASSERT_FALSE(m->request.empty());
        m->response.assign(m->request.begin(), m->request.end());
        m->status = Status::OK();
        m->done.store(true, std::memory_order_release);
        m->Unref();
      } else {
        std::this_thread::yield();
      }
    }
  });

  Rng rng(0xf00d);
  uint64_t abandoned = 0;
  for (int i = 0; i < kRounds; ++i) {
    rdma::RpcMessage* msg = rdma::RpcMessagePool::Acquire();
    ASSERT_TRUE(msg->request.empty());   // recycled messages arrive reset
    ASSERT_TRUE(msg->response.empty());
    msg->request.assign(16, static_cast<uint8_t>(i));
    while (!ring.TryPush(msg)) std::this_thread::yield();
    if (rng.Chance(0.3)) {
      // Abandon immediately: the server's Unref races ours and whoever is
      // last recycles on their own thread.
      msg->Unref();
      ++abandoned;
    } else {
      // Normal path: wait for completion, read the response, then release.
      // Local server thread cannot die. NOLINT(corm-spin-wait)
      while (!msg->done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      ASSERT_EQ(msg->response.size(), 16u);
      msg->Unref();
    }
  }
  stop.store(true, std::memory_order_release);
  server.join();

  EXPECT_GT(abandoned, 0u);
  // Normal-path rounds recycled into this (client) thread's freelist.
  EXPECT_GT(rdma::RpcMessagePool::LocalFreeForTesting(), 0u);
}

}  // namespace
}  // namespace corm::core
