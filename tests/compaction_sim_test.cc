// Tests for the abstract allocator/compaction simulator (memory studies).

#include <gtest/gtest.h>

#include <tuple>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "common/byte_units.h"
#include "workload/redis_trace.h"
#include "workload/trace_runner.h"

namespace corm::baseline {
namespace {

alloc::SizeClassTable TestClasses() {
  return alloc::SizeClassTable::PowersOfTwo(8, 16 * 1024);
}

SimConfig Config(Algorithm algo, int id_bits = 16, int threads = 1,
                 size_t block_bytes = 64 * kKiB) {
  SimConfig config;
  config.algorithm = algo;
  config.id_bits = id_bits;
  config.num_threads = threads;
  config.block_bytes = block_bytes;
  config.seed = 12345;
  return config;
}

TEST(AllocatorSimTest, AllocFreeAccounting) {
  auto classes = TestClasses();
  AllocatorSim sim(Config(Algorithm::kNone), &classes);
  std::vector<SimHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(sim.Alloc(256));
  EXPECT_EQ(sim.live_objects(), 100u);
  EXPECT_EQ(sim.LiveBytes(), 100u * 256);
  // 64 KiB block holds 256 objects of 256 B.
  EXPECT_EQ(sim.num_blocks(), 1u);
  for (auto h : handles) sim.Free(h);
  EXPECT_EQ(sim.live_objects(), 0u);
  EXPECT_EQ(sim.num_blocks(), 0u);  // empty block released
  EXPECT_EQ(sim.ActiveBytes(), 0u);
}

TEST(AllocatorSimTest, EmptyBlocksReleasedMidTrace) {
  auto classes = TestClasses();
  AllocatorSim sim(Config(Algorithm::kNone), &classes);
  auto a = sim.Alloc(1024);
  auto b = sim.Alloc(8192);
  EXPECT_EQ(sim.num_blocks(), 2u);  // different classes
  sim.Free(a);
  EXPECT_EQ(sim.num_blocks(), 1u);
  sim.Free(b);
  EXPECT_EQ(sim.num_blocks(), 0u);
}

TEST(AllocatorSimTest, OverheadAccountedPerAlgorithm) {
  auto classes = TestClasses();
  AllocatorSim mesh(Config(Algorithm::kMesh), &classes);
  AllocatorSim corm16(Config(Algorithm::kCorm, 16), &classes);
  AllocatorSim corm8(Config(Algorithm::kCorm, 8), &classes);
  for (int i = 0; i < 1000; ++i) {
    mesh.Alloc(64);
    corm16.Alloc(64);
    corm8.Alloc(64);
  }
  // Same block usage; CoRM adds (28+n) bits per object (Table 3).
  EXPECT_EQ(corm16.ActiveBytes() - mesh.ActiveBytes(), (1000u * 44 + 7) / 8);
  EXPECT_EQ(corm8.ActiveBytes() - mesh.ActiveBytes(), (1000u * 36 + 7) / 8);
}

TEST(AllocatorSimTest, IdealBoundIsMinimalBlocks) {
  auto classes = TestClasses();
  AllocatorSim sim(Config(Algorithm::kNone), &classes);
  std::vector<SimHandle> handles;
  for (int i = 0; i < 300; ++i) handles.push_back(sim.Alloc(256));
  // Free 250, leaving 50 live: ideal = 1 block (256 slots per 64 KiB).
  for (int i = 0; i < 250; ++i) sim.Free(handles[i]);
  EXPECT_EQ(sim.IdealBytes(), 64 * kKiB);
  EXPECT_GE(sim.ActiveBytes(), sim.IdealBytes());
}

// Mesh cannot merge blocks whose objects collide on offsets; CoRM can.
// Placement is randomized (as in the real Mesh allocator), so the contrast
// is statistical: with two slots per block and one object per block, Mesh
// merges only when the two random offsets differ (p = 1/2 + first-fit
// relocation bias), while CoRM-16 virtually always merges (ID collision
// probability 1/65536) by relocating the conflicting object.
TEST(AllocatorSimTest, CormMergesOffsetConflictsMeshCannot) {
  auto classes = TestClasses();
  const int kTrials = 64;
  int mesh_merges = 0, corm_merges = 0, corm_relocations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (Algorithm algo : {Algorithm::kMesh, Algorithm::kCorm}) {
      SimConfig config = Config(algo, 16, /*threads=*/2,
                                /*block_bytes=*/16 * kKiB);
      config.seed = 1000 + trial;
      AllocatorSim sim(config, &classes);
      (void)sim.AllocOnThread(8192, 0);  // 2 slots per 16 KiB block
      (void)sim.AllocOnThread(8192, 1);
      ASSERT_EQ(sim.num_blocks(), 2u);
      auto outcome = sim.Compact();
      if (algo == Algorithm::kMesh) {
        mesh_merges += outcome.blocks_after == 1;
      } else {
        corm_merges += outcome.blocks_after == 1;
        corm_relocations += outcome.objects_moved;
      }
    }
  }
  EXPECT_EQ(corm_merges, kTrials) << "CoRM-16 must always merge";
  EXPECT_LT(mesh_merges, kTrials) << "Mesh must fail on offset conflicts";
  EXPECT_GT(mesh_merges, 0) << "Mesh must merge disjoint offsets";
  // CoRM resolved offset conflicts by relocation (exact counts differ from
  // Mesh's failures because ID draws shift the RNG stream's placements).
  EXPECT_GT(corm_relocations, 0);
  EXPECT_LT(corm_relocations, kTrials);
}

TEST(AllocatorSimTest, MeshMergesDisjointOffsets) {
  auto classes = TestClasses();
  AllocatorSim sim(Config(Algorithm::kMesh, 0, 2), &classes);
  // Thread 0: objects at slots 0,1,2; thread 1: slots 0..3, free 0..2 ->
  // survivor at slot 3. Offsets disjoint -> Mesh merges.
  for (int i = 0; i < 3; ++i) sim.AllocOnThread(8192, 0);
  std::vector<SimHandle> t1;
  for (int i = 0; i < 4; ++i) t1.push_back(sim.AllocOnThread(8192, 1));
  sim.Free(t1[0]);
  sim.Free(t1[1]);
  sim.Free(t1[2]);
  ASSERT_EQ(sim.num_blocks(), 2u);
  auto outcome = sim.Compact();
  EXPECT_EQ(outcome.blocks_after, 1u);
  EXPECT_EQ(outcome.objects_moved, 0u);  // offsets preserved by definition
}

TEST(AllocatorSimTest, VanillaCormSkipsUnaddressableClasses) {
  auto classes = TestClasses();
  // 64 KiB blocks of 8 B objects: 8192 slots > 2^8 -> CoRM-8 cannot
  // compact; hybrid falls back to offsets.
  for (Algorithm algo : {Algorithm::kCorm, Algorithm::kHybrid}) {
    AllocatorSim sim(Config(algo, 8, 2), &classes);
    for (int i = 0; i < 3; ++i) sim.AllocOnThread(8, 0);
    std::vector<SimHandle> t1;
    for (int i = 0; i < 8; ++i) t1.push_back(sim.AllocOnThread(8, 1));
    for (int i = 0; i < 5; ++i) sim.Free(t1[i]);
    ASSERT_EQ(sim.num_blocks(), 2u);
    auto outcome = sim.Compact();
    if (algo == Algorithm::kCorm) {
      EXPECT_EQ(outcome.blocks_after, 2u);
    } else {
      // Hybrid merges via offsets: thread-0 objects sit at slots 0-2,
      // thread-1 survivors at 5-7 — disjoint.
      EXPECT_EQ(outcome.blocks_after, 1u);
    }
  }
}

TEST(AllocatorSimTest, CompactionNeverLosesObjects) {
  auto classes = TestClasses();
  AllocatorSim sim(Config(Algorithm::kCorm, 16, 4), &classes);
  Rng rng(9);
  std::vector<SimHandle> live;
  for (int step = 0; step < 20000; ++step) {
    if (rng.NextDouble() < 0.6 || live.empty()) {
      live.push_back(sim.Alloc(64 << rng.Uniform(5)));
    } else {
      const size_t victim = rng.Uniform(live.size());
      sim.Free(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  const uint64_t live_before = sim.live_objects();
  const uint64_t live_bytes_before = sim.LiveBytes();
  auto outcome = sim.Compact();
  EXPECT_EQ(sim.live_objects(), live_before);
  EXPECT_EQ(sim.LiveBytes(), live_bytes_before);
  EXPECT_LE(outcome.blocks_after, outcome.blocks_before);
  // Freeing everything still works after compaction moved objects.
  for (auto h : live) sim.Free(h);
  EXPECT_EQ(sim.num_blocks(), 0u);
}

TEST(AllocatorSimTest, AllocAfterCompactReusesSurvivors) {
  auto classes = TestClasses();
  AllocatorSim sim(Config(Algorithm::kCorm, 16, 1), &classes);
  std::vector<SimHandle> handles;
  for (int i = 0; i < 512; ++i) handles.push_back(sim.Alloc(256));
  // Free 3 of every 4 so the merged survivor block is non-full.
  for (int i = 0; i < 512; ++i) {
    if (i % 4 != 0) sim.Free(handles[i]);
  }
  sim.Compact();
  const size_t blocks = sim.num_blocks();
  EXPECT_EQ(blocks, 1u);
  sim.Alloc(256);  // must go into the existing non-full block
  EXPECT_EQ(sim.num_blocks(), blocks);
}

// Parameterized: compaction ordering invariants across algorithms/configs.
class SimSweep : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {
};

TEST_P(SimSweep, ActiveMemoryOrderingHolds) {
  const auto [algo, threads] = GetParam();
  auto classes = TestClasses();
  AllocatorSim sim(Config(algo, 16, threads), &classes);
  Rng rng(42);
  std::vector<SimHandle> handles;
  for (int i = 0; i < 8000; ++i) handles.push_back(sim.Alloc(2048));
  for (auto h : handles) {
    if (rng.Chance(0.7)) sim.Free(h);
  }
  const uint64_t before = sim.ActiveBytes();
  sim.Compact();
  const uint64_t after = sim.ActiveBytes();
  EXPECT_LE(after, before);
  EXPECT_GE(after, sim.IdealBytes());
  EXPECT_GE(sim.ActiveBytes(), sim.LiveBytes());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SimSweep,
    ::testing::Combine(::testing::Values(Algorithm::kNone, Algorithm::kMesh,
                                         Algorithm::kCorm, Algorithm::kHybrid),
                       ::testing::Values(1, 8)));

TEST(AlgorithmNameTest, Names) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kNone, 0), "No");
  EXPECT_STREQ(AlgorithmName(Algorithm::kCorm, 12), "CoRM-12");
  EXPECT_STREQ(AlgorithmName(Algorithm::kHybrid, 16), "CoRM-0+CoRM-16");
  EXPECT_STREQ(AlgorithmName(Algorithm::kAdaptive, 0), "CoRM-auto");
}

// --- §4.4.3 auto-labeling extension ------------------------------------------

TEST(AdaptiveIdTest, EveryClassCompactable) {
  auto classes = TestClasses();
  // 1 MiB blocks, 8 B objects: 131072 slots — CoRM-16 refuses; the
  // adaptive strategy sizes IDs to the class and always compacts.
  SimConfig config = Config(Algorithm::kAdaptive, 0, 2, kMiB);
  AllocatorSim sim(config, &classes);
  for (int i = 0; i < 600; ++i) sim.AllocOnThread(8, 0);
  for (int i = 0; i < 600; ++i) sim.AllocOnThread(8, 1);
  ASSERT_EQ(sim.num_blocks(), 2u);
  auto outcome = sim.Compact();
  EXPECT_EQ(outcome.blocks_after, 1u);
}

TEST(AdaptiveIdTest, OverheadScalesWithClass) {
  auto classes = TestClasses();
  SimConfig config = Config(Algorithm::kAdaptive, 0, 1, kMiB);
  // Small objects (many slots) pay more ID bits than large objects.
  AllocatorSim small(config, &classes);
  AllocatorSim large(config, &classes);
  for (int i = 0; i < 1000; ++i) {
    small.Alloc(16);    // 65536 slots -> 22-bit IDs
    large.Alloc(8192);  // 128 slots  -> 13-bit IDs
  }
  const uint64_t small_overhead = small.ActiveBytes() - small.num_blocks() * kMiB;
  const uint64_t large_overhead = large.ActiveBytes() - large.num_blocks() * kMiB;
  EXPECT_EQ(small_overhead, (1000u * (28 + 22) + 7) / 8);
  EXPECT_EQ(large_overhead, (1000u * (28 + 13) + 7) / 8);
}

TEST(AdaptiveIdTest, BeatsFixedWidthsAtLowOccupancy) {
  // Auto-labeling helps where random IDs help at all: low-occupancy blocks
  // of a class whose slot count exceeds a fixed 16-bit space (ID merging
  // needs n >> b^2, so dense small-object blocks are incompressible for
  // *every* width — what varies is whether sparse ones can merge).
  auto classes = TestClasses();
  auto run = [&](Algorithm algo, int bits) {
    SimConfig config = Config(algo, bits, 16, kMiB);
    AllocatorSim sim(config, &classes);
    Rng rng(3);
    std::vector<SimHandle> tiny;
    // 16 threads x ~1 block of 8 B objects each, then free 99%: ~80 live
    // objects per block. Adaptive gives this class 23-bit IDs (collision
    // mass 80^2/2^23 ~ 0.001): merges freely. CoRM-16 cannot address the
    // class at all; hybrid-16 falls back to offsets, which at 80/131072
    // occupancy still collide sometimes.
    for (int i = 0; i < 130000; ++i) tiny.push_back(sim.Alloc(8));
    for (auto h : tiny) {
      if (rng.Chance(0.99)) sim.Free(h);
    }
    sim.Compact();
    return sim.ActiveBytes();
  };
  const uint64_t adaptive = run(Algorithm::kAdaptive, 0);
  const uint64_t fixed16 = run(Algorithm::kCorm, 16);
  EXPECT_LT(adaptive, fixed16 / 2);
}

TEST(AdaptiveIdTest, MatchesBestFixedWidthOnRedisT3) {
  // End-to-end check against the paper's own workload: on redis-mem-t3
  // (Fig. 19) CoRM-auto must be at least as good as the best fixed hybrid
  // width, without per-workload tuning (§4.4.3).
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);
  auto trace = workload::MakeRedisTraceT3(7);
  auto run = [&](Algorithm algo, int bits) {
    SimConfig config;
    config.algorithm = algo;
    config.id_bits = bits;
    config.block_bytes = kMiB;
    config.num_threads = 32;
    config.seed = 13;
    return workload::RunTrace(trace, config, &classes).active_bytes_after;
  };
  const uint64_t adaptive = run(Algorithm::kAdaptive, 0);
  EXPECT_LE(adaptive, run(Algorithm::kHybrid, 8));
  EXPECT_LE(adaptive, run(Algorithm::kHybrid, 16));
}

}  // namespace
}  // namespace corm::baseline
