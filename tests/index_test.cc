// Keyed access layer tests (DESIGN.md §13): the RDMA hash index spanning
// client → core → compaction → dsm.
//
// The invariant under test throughout: an index hint is never truth. A
// one-sided lookup may race compaction's IndexRepair sub-phase, an epoch
// seal, or a concurrent Del — every such race must resolve to either the
// correct bytes or a clean transient error, never to another object's
// bytes through a dangling hint.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sanitizer.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"
#include "sim/fault_injector.h"
#include "workload/keyed_driver.h"

namespace corm {
namespace {

using core::Context;
using core::CormConfig;
using core::CormNode;
using core::GlobalAddr;

constexpr size_t kValue = 48;

CormConfig BaseConfig() {
  CormConfig config;
  config.num_workers = 2;
  config.block_pages = 1;
  return config;
}

Context::Options ShortDeadlines() {
  Context::Options opts;
#ifdef CORM_TSAN_ENABLED
  opts.rpc_retry.deadline_ns = 60'000'000;
  opts.recovery_retry.deadline_ns = 120'000'000;
#else
  opts.rpc_retry.deadline_ns = 15'000'000;
  opts.recovery_retry.deadline_ns = 40'000'000;
#endif
  return opts;
}

// Outcomes a keyed op may legally produce while racing compaction or a
// paused leader; anything else is a bug.
bool TransientKeyed(const Status& st) {
  switch (st.code()) {
    case StatusCode::kTimeout:
    case StatusCode::kNetworkError:
    case StatusCode::kObjectLocked:
    case StatusCode::kTornRead:
    case StatusCode::kObjectMoved:
    case StatusCode::kStalePointer:
    case StatusCode::kQpBroken:
      return true;
    default:
      return false;
  }
}

// --- Both views name the same object. --------------------------------------

TEST(IndexTest, KeyedPutGetDelRoundTrip) {
  CormNode node(BaseConfig());
  auto ctx = Context::Create(&node);
  std::vector<uint8_t> buf(kValue), out(kValue);

  workload::FillValue(42, buf.data(), kValue);
  auto addr = ctx->Put(42, buf.data(), kValue);
  ASSERT_TRUE(addr.ok()) << addr.status();

  // The returned pointer carries the owning worker's ring hint (flags bits
  // 7..4), so keyed deletes can route their Free without the forward hop.
  EXPECT_GE(addr->OwnerHint(), 0);
  EXPECT_LT(addr->OwnerHint(), node.config().num_workers);

  // Keyed view and pointer view read the same bytes.
  ASSERT_TRUE(ctx->Get(42, out.data(), kValue).ok());
  EXPECT_TRUE(workload::CheckValue(42, out.data(), kValue));
  ASSERT_TRUE(ctx->DirectRead(*addr, out.data(), kValue).ok());
  EXPECT_TRUE(workload::CheckValue(42, out.data(), kValue));

  // Overwriting Put updates in place: same key, same object.
  workload::FillValue(43, buf.data(), kValue);
  auto again = ctx->Put(42, buf.data(), kValue);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(ctx->Get(42, out.data(), kValue).ok());
  EXPECT_TRUE(workload::CheckValue(43, out.data(), kValue));

  // Del unlinks before it frees: the key vanishes, repeat deletes miss.
  ASSERT_TRUE(ctx->Del(42).ok());
  EXPECT_EQ(ctx->Get(42, out.data(), kValue).code(), StatusCode::kNotFound);
  EXPECT_EQ(ctx->Del(42).code(), StatusCode::kNotFound);
  EXPECT_EQ(ctx->Get(7, out.data(), kValue).code(), StatusCode::kNotFound);

  EXPECT_GE(ctx->stats().index_lookups, 5u);
  EXPECT_TRUE(node.Audit().ok());
}

// --- The one-sided probe path: a fresh client never needs an RPC. ----------

TEST(IndexTest, FreshClientResolvesKeysOneSided) {
  CormNode node(BaseConfig());
  auto writer = Context::Create(&node);
  constexpr uint64_t kKeys = 64;
  std::vector<uint8_t> buf(kValue), out(kValue);
  for (uint64_t k = 0; k < kKeys; ++k) {
    workload::FillValue(k, buf.data(), kValue);
    ASSERT_TRUE(writer->Put(k, buf.data(), kValue).ok());
  }

  // A second client with a cold hint cache: every Get resolves through the
  // one-sided bucket probe + validated read, no RPC fallback.
  auto reader = Context::Create(&node);
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(reader->Get(k, out.data(), kValue).ok()) << k;
    EXPECT_TRUE(workload::CheckValue(k, out.data(), kValue)) << k;
  }
  EXPECT_EQ(reader->stats().index_lookups, kKeys);
  EXPECT_EQ(reader->stats().index_one_sided_hits, kKeys);
  EXPECT_EQ(reader->stats().index_rpc_fallbacks, 0u);

  // Warm cache: the steady state is one validated DirectRead per Get.
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(reader->Get(k, out.data(), kValue).ok());
  }
  EXPECT_EQ(reader->stats().index_one_sided_hits, 2 * kKeys);

  const core::NodeStats stats = node.stats();
  EXPECT_GE(stats.index_lookups, 2 * kKeys);
  EXPECT_GE(stats.index_one_sided_hits, 2 * kKeys);
}

// --- Fault site index.stale_hint: the RPC fallback stays correct. ----------

TEST(IndexTest, StaleHintFaultFallsBackToRpc) {
  CormNode node(BaseConfig());
  auto ctx = Context::Create(&node);
  constexpr uint64_t kKeys = 16;
  std::vector<uint8_t> buf(kValue), out(kValue);
  for (uint64_t k = 0; k < kKeys; ++k) {
    workload::FillValue(k, buf.data(), kValue);
    ASSERT_TRUE(ctx->Put(k, buf.data(), kValue).ok());
  }

  sim::FaultInjector injector(7);
  sim::FaultSchedule every;
  every.every_nth = 1;  // every Get distrusts its one-sided snapshot
  injector.Arm(sim::fault_sites::kIndexStaleHint, every);
  {
    sim::ScopedFaultInjector install(&injector);
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(ctx->Get(k, out.data(), kValue).ok()) << k;
      EXPECT_TRUE(workload::CheckValue(k, out.data(), kValue)) << k;
    }
  }
  EXPECT_EQ(injector.FiredCount(sim::fault_sites::kIndexStaleHint), kKeys);
  EXPECT_GE(ctx->stats().index_rpc_fallbacks, kKeys);
  EXPECT_GE(node.stats().index_rpc_fallbacks, kKeys);

  // Injector gone: the very next Gets ride the one-sided path again (the
  // fallback repopulated the hint cache).
  const uint64_t hits_before = ctx->stats().index_one_sided_hits;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(ctx->Get(k, out.data(), kValue).ok());
  }
  EXPECT_EQ(ctx->stats().index_one_sided_hits, hits_before + kKeys);
}

// --- Lookup during compaction: the IndexRepair interleave. -----------------
// The leader is frozen inside the kIndexRepair sub-phase — source objects
// under kCompacting locks, bucket entries part-way through their rewrite —
// while a client drives keyed Gets straight into that window. Every Get
// must return the key's bytes or a transient error, never another
// object's bytes.

struct PhaseGate {
  std::mutex mu;
  std::condition_variable cv;
  bool paused = false;
  bool release = false;
  bool open = false;  // once true, the hook stops pausing
};

TEST(IndexTest, LookupDuringIndexRepairSeesNoDanglingHint) {
  PhaseGate gate;
  CormConfig config = BaseConfig();
  config.compaction_slice_objects = 4;  // many small IndexRepair slices
  config.compaction_phase_hook = [&gate](core::CompactionPhase p) {
    if (p != core::CompactionPhase::kIndexRepair) return;
    std::unique_lock<std::mutex> lock(gate.mu);
    if (gate.open) return;
    gate.paused = true;
    gate.release = false;
    gate.cv.notify_all();
    gate.cv.wait(lock, [&gate] { return gate.release; });
  };
  CormNode node(config);
  auto ctx = Context::Create(&node);

  // Fault site index.repair_delay: stall before every repair slice,
  // widening the src-coordinates window the Gets race against.
  sim::FaultInjector injector(11);
  sim::FaultSchedule stall;
  stall.every_nth = 1;
  stall.delay_ns = 2'000;
  injector.Arm(sim::fault_sites::kIndexRepairDelay, stall);
  sim::ScopedFaultInjector install(&injector);

  // Load keys, then delete every other one: classic fragmentation, with
  // the survivors' bucket entries pointing into soon-to-move blocks.
  constexpr uint64_t kKeys = 256;
  std::vector<uint8_t> buf(kValue), out(kValue);
  std::vector<uint64_t> survivors;
  for (uint64_t k = 0; k < kKeys; ++k) {
    workload::FillValue(k, buf.data(), kValue);
    ASSERT_TRUE(ctx->Put(k, buf.data(), kValue).ok());
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (k % 2 == 0) {
      ASSERT_TRUE(ctx->Del(k).ok());
    } else {
      survivors.push_back(k);
    }
  }

  auto cls = node.ClassForPayload(kValue);
  ASSERT_TRUE(cls.ok());
  std::atomic<bool> done{false};
  Result<core::CompactionReport> report = Status::Internal("never ran");
  std::thread compactor([&] {
    report = node.Compact(*cls);
    done.store(true, std::memory_order_release);
  });

  // Wait for the leader to freeze inside kIndexRepair, then probe the
  // window with a cold client (short deadlines: an RPC fallback landing on
  // the frozen leader's ring must time out, not hang the test).
  {
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.cv.wait(lock, [&gate] { return gate.paused; });
  }
  auto prober = Context::Create(&node, ShortDeadlines());
  size_t ok_reads = 0, transient_reads = 0;
  for (const uint64_t k : survivors) {
    const Status st = prober->Get(k, out.data(), kValue);
    if (st.ok()) {
      ++ok_reads;
      EXPECT_TRUE(workload::CheckValue(k, out.data(), kValue))
          << "key " << k << " read through a dangling hint mid-repair";
    } else {
      ++transient_reads;
      EXPECT_TRUE(TransientKeyed(st)) << "key " << k << ": " << st.ToString();
    }
  }
  {
    std::lock_guard<std::mutex> lock(gate.mu);
    gate.open = true;  // let this and every later pause through
    gate.release = true;
    gate.cv.notify_all();
  }
  compactor.join();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(ok_reads + transient_reads, 0u);
  EXPECT_GT(injector.FiredCount(sim::fault_sites::kIndexRepairDelay), 0u);

  // After the run: every survivor resolves one-sided to its bytes, the
  // engine rewrote at least one moved entry, and the node audits clean.
  EXPECT_GT(node.stats().index_repairs, 0u);
  auto verify = Context::Create(&node);
  for (const uint64_t k : survivors) {
    ASSERT_TRUE(verify->Get(k, out.data(), kValue).ok()) << k;
    EXPECT_TRUE(workload::CheckValue(k, out.data(), kValue)) << k;
  }
  EXPECT_TRUE(node.Audit().ok());
}

// --- Epoch seal: fenced entries force the RPC re-mint. ---------------------

TEST(IndexTest, SealedEpochFencesEntriesUntilRpcRemint) {
  CormNode node(BaseConfig());
  auto writer = Context::Create(&node);
  std::vector<uint8_t> buf(kValue), out(kValue);
  workload::FillValue(9, buf.data(), kValue);
  ASSERT_TRUE(writer->Put(9, buf.data(), kValue).ok());

  const uint64_t fenced_before = node.stats().index_fenced_entries;
  node.SealIndexEpoch();
  EXPECT_GT(node.stats().index_fenced_entries, fenced_before);

  // A cold client's one-sided probe sees the fenced entry, distrusts it,
  // and re-mints through the RPC lookup — which repairs the entry under
  // the new epoch.
  auto reader = Context::Create(&node);
  ASSERT_TRUE(reader->Get(9, out.data(), kValue).ok());
  EXPECT_TRUE(workload::CheckValue(9, out.data(), kValue));
  EXPECT_GE(reader->stats().index_rpc_fallbacks, 1u);
  EXPECT_GT(node.stats().index_repairs, 0u);

  // Re-minted: the next cold probe validates one-sided again.
  auto reader2 = Context::Create(&node);
  ASSERT_TRUE(reader2->Get(9, out.data(), kValue).ok());
  EXPECT_EQ(reader2->stats().index_rpc_fallbacks, 0u);
  EXPECT_EQ(reader2->stats().index_one_sided_hits, 1u);
}

// --- DSM: keyed routing, failover re-home, seal-on-revive. -----------------

TEST(IndexTest, FailoverRehomesKeyRangesAndSealsRevivedNode) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node_config = BaseConfig();
  dsm::Cluster cluster(cfg);
  dsm::DsmContext ctx(&cluster, ShortDeadlines());

  constexpr uint64_t kKeys = 64;
  std::vector<uint8_t> buf(kValue), out(kValue);
  std::vector<uint64_t> on_dead;
  for (uint64_t k = 0; k < kKeys; ++k) {
    workload::FillValue(k, buf.data(), kValue);
    auto addr = ctx.Put(k, buf.data(), kValue);
    ASSERT_TRUE(addr.ok()) << addr.status();
    EXPECT_EQ(dsm::NodeOf(*addr), cluster.KeyOwner(k));
    if (cluster.KeyOwner(k) == 1) on_dead.push_back(k);
  }
  ASSERT_FALSE(on_dead.empty());  // 64 ranges over 3 nodes: ~21 on node 1

  // Kill the home. Its ranges stay put: keyed ops answer with a transient
  // network error, nothing is silently re-routed.
  cluster.CrashNode(1);
  EXPECT_EQ(ctx.Get(on_dead[0], out.data(), kValue).code(),
            StatusCode::kNetworkError);
  workload::FillValue(99, buf.data(), kValue);
  EXPECT_EQ(ctx.Put(on_dead[0], buf.data(), kValue).status().code(),
            StatusCode::kNetworkError);

  // Explicit control-plane failover: every range homed on node 1 moves to
  // a surviving successor, counted on the new homes.
  const int moved = cluster.RehomeDeadNode(1);
  EXPECT_GT(moved, 0);
  uint64_t rehomes = 0;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    rehomes += cluster.node(n)->stats().index_rehomes;
  }
  EXPECT_EQ(rehomes, static_cast<uint64_t>(moved));
  for (uint64_t k = 0; k < kKeys; ++k) EXPECT_NE(cluster.KeyOwner(k), 1);

  // The data did not migrate (no replication in this test), so a re-homed
  // key is NotFound on its new home — a clean miss, never a wrong value —
  // and a fresh Put re-creates it there.
  EXPECT_EQ(ctx.Get(on_dead[0], out.data(), kValue).code(),
            StatusCode::kNotFound);
  workload::FillValue(on_dead[0], buf.data(), kValue);
  auto readdr = ctx.Put(on_dead[0], buf.data(), kValue);
  ASSERT_TRUE(readdr.ok());
  EXPECT_NE(dsm::NodeOf(*readdr), 1);
  ASSERT_TRUE(ctx.Get(on_dead[0], out.data(), kValue).ok());
  EXPECT_TRUE(workload::CheckValue(on_dead[0], out.data(), kValue));

  // Restart the dead node: the armed seal fires, fencing every pre-crash
  // bucket entry it still holds (it no longer owns those ranges).
  const uint64_t fenced_before = cluster.node(1)->stats().index_fenced_entries;
  cluster.RestartNode(1);
  EXPECT_GT(cluster.node(1)->stats().index_fenced_entries, fenced_before);
  for (int i = 0; i < 4; ++i) cluster.Heartbeat();
  EXPECT_EQ(cluster.failure_detector()->health(1), dsm::NodeHealth::kAlive);

  // Keys homed on the survivors were never disturbed.
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (cluster.KeyOwner(k) == 1) continue;
    if (std::find(on_dead.begin(), on_dead.end(), k) != on_dead.end()) {
      continue;  // lost with node 1's data, by design
    }
    ASSERT_TRUE(ctx.Get(k, out.data(), kValue).ok()) << k;
    EXPECT_TRUE(workload::CheckValue(k, out.data(), kValue)) << k;
  }
}

// --- Concurrency: keyed drivers hammering one node stay consistent. --------

TEST(IndexTest, ConcurrentKeyedDriversStayConsistent) {
  CormConfig config = BaseConfig();
  CormNode node(config);
  constexpr int kThreads = 3;
#ifdef CORM_TSAN_ENABLED
  constexpr size_t kOps = 150;
#else
  constexpr size_t kOps = 600;
#endif

  std::vector<workload::KeyedDriverReport> reports(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&node, &reports, t] {
      auto ctx = Context::Create(&node, ShortDeadlines());
      workload::KeyedDriverConfig dcfg;
      dcfg.ycsb.num_keys = 32;
      dcfg.ycsb.read_fraction = 0.6;
      dcfg.ycsb.zipf_theta = 0.6;
      dcfg.ycsb.seed = 100 + t;
      dcfg.value_size = kValue;
      dcfg.delete_fraction = 0.2;
      dcfg.key_offset = static_cast<uint64_t>(t) << 20;
      workload::KeyedDriver<Context> driver(ctx.get(), dcfg);
      ASSERT_TRUE(driver.Load().ok());
      reports[t] = driver.Run(kOps);
    });
  }
  for (auto& th : threads) th.join();

  uint64_t ops = 0;
  for (const auto& r : reports) {
    ops += r.ops;
    EXPECT_EQ(r.corruptions, 0u);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_EQ(r.not_found, 0u);  // disjoint key spaces, Del always re-Puts
  }
  EXPECT_EQ(ops, static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_TRUE(node.Audit().ok());
}

}  // namespace
}  // namespace corm
