// BlockDirectory: the sharded, lock-free-read block directory (DESIGN.md
// §7.1). Covers the reader contract the data plane depends on: point
// lookups take zero locks, concurrent mutation (insert / erase / the
// compaction retarget batch) never makes a reader observe a torn or
// dangling entry, the epoch counter invalidates per-worker caches after
// every mutation, and shard growth keeps in-flight readers safe. Labeled
// `tsan`: the concurrent cases are the ones the thread sanitizer must see.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/block_directory.h"
#include "core/client.h"
#include "core/corm_node.h"

namespace corm::core {
namespace {

// The directory stores Block* opaquely (packed into an atomic word, low
// bit = alias flag) and never dereferences them; aligned fake pointers
// keep the unit tests free of allocator setup.
alloc::Block* FakeBlock(uintptr_t id) {
  return reinterpret_cast<alloc::Block*>(id << 4);
}

TEST(DirectoryTest, InsertLookupErase) {
  BlockDirectory dir(4);
  EXPECT_EQ(dir.Lookup(0x1000).block, nullptr);

  dir.Insert(0x1000, FakeBlock(1), /*is_alias=*/false);
  dir.Insert(0x2000, FakeBlock(2), /*is_alias=*/true);
  EXPECT_EQ(dir.Lookup(0x1000).block, FakeBlock(1));
  EXPECT_FALSE(dir.Lookup(0x1000).is_alias);
  EXPECT_EQ(dir.Lookup(0x2000).block, FakeBlock(2));
  EXPECT_TRUE(dir.Lookup(0x2000).is_alias);
  EXPECT_EQ(dir.ApproxSize(), 2u);

  dir.Erase(0x1000);
  EXPECT_EQ(dir.Lookup(0x1000).block, nullptr);
  EXPECT_EQ(dir.Lookup(0x2000).block, FakeBlock(2));
  EXPECT_EQ(dir.ApproxSize(), 1u);

  // Erased keys can be reused (same slot, new value).
  dir.Insert(0x1000, FakeBlock(3), /*is_alias=*/false);
  EXPECT_EQ(dir.Lookup(0x1000).block, FakeBlock(3));
}

TEST(DirectoryTest, RetargetToAliasBatch) {
  BlockDirectory dir(4);
  dir.Insert(0x1000, FakeBlock(1), /*is_alias=*/false);   // src
  dir.Insert(0x2000, FakeBlock(1), /*is_alias=*/true);    // ghost of src
  dir.Insert(0x3000, FakeBlock(1), /*is_alias=*/true);    // ghost of src
  dir.Insert(0x9000, FakeBlock(9), /*is_alias=*/false);   // bystander

  const uint64_t before = dir.epoch();
  dir.RetargetToAlias(0x1000, {0x2000, 0x3000}, FakeBlock(7));

  for (sim::VAddr base : {sim::VAddr{0x1000}, sim::VAddr{0x2000},
                          sim::VAddr{0x3000}}) {
    EXPECT_EQ(dir.Lookup(base).block, FakeBlock(7));
    EXPECT_TRUE(dir.Lookup(base).is_alias);
  }
  EXPECT_EQ(dir.Lookup(0x9000).block, FakeBlock(9));
  // The whole batch is one epoch bump: a worker cache revalidates once.
  EXPECT_EQ(dir.epoch(), before + 1);
}

TEST(DirectoryTest, EpochBumpsOnEveryMutation) {
  BlockDirectory dir(4);
  uint64_t e = dir.epoch();
  dir.Insert(0x1000, FakeBlock(1), false);
  EXPECT_GT(dir.epoch(), e);
  e = dir.epoch();
  dir.Erase(0x1000);
  EXPECT_GT(dir.epoch(), e);
}

// The data-plane contract: lookups acquire no locks. A read-heavy phase
// must leave the writer-lock acquisition counter untouched.
TEST(DirectoryTest, LookupsTakeZeroLocks) {
  BlockDirectory dir(4);
  for (uintptr_t i = 1; i <= 64; ++i) {
    dir.Insert(i * 0x1000, FakeBlock(i), false);
  }
  const uint64_t writer_locks = dir.writer_acquires_for_testing();

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&dir] {
      for (int rep = 0; rep < 10'000; ++rep) {
        const uintptr_t i = static_cast<uintptr_t>(rep % 64) + 1;
        ASSERT_EQ(dir.Lookup(i * 0x1000).block, FakeBlock(i));
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(dir.writer_acquires_for_testing(), writer_locks);
}

// Readers racing inserts, erases, retargets and shard growth (single shard
// so every mutation contends) may only ever observe: absent, or a value
// that was stored for that exact key — never a torn mix or a foreign block.
TEST(DirectoryTest, ConcurrentLookupVsMutation) {
  BlockDirectory dir(1);
  constexpr int kKeys = 256;  // enough inserts to force several growths
  constexpr uintptr_t kRetargeted = 0x7777;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t seed = 0x9e3779b9 + static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const uintptr_t k = (seed >> 33) % kKeys + 1;
        const BlockDirectory::Entry e = dir.Lookup(k * 0x1000);
        if (e.block != nullptr) {
          // Valid values for key k: its own block, or the retarget dst.
          ASSERT_TRUE(e.block == FakeBlock(k) ||
                      e.block == FakeBlock(kRetargeted))
              << "key " << k << " resolved to a foreign block";
          if (e.block == FakeBlock(kRetargeted)) {
            ASSERT_TRUE(e.is_alias);
          }
        }
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    for (uintptr_t k = 1; k <= kKeys; ++k) {
      dir.Insert(k * 0x1000, FakeBlock(k), false);
    }
    for (uintptr_t k = 1; k <= kKeys; k += 3) {
      dir.Erase(k * 0x1000);
    }
    // Retarget a small batch, as a compaction merge would.
    dir.RetargetToAlias(2 * 0x1000, {4 * 0x1000, 6 * 0x1000},
                        FakeBlock(kRetargeted));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
}

// End-to-end epoch invalidation: worker directory caches warmed by reads
// must refetch after a compaction merge retargets directory entries —
// reads keep succeeding (with corrected pointers), and the epoch the
// caches validate against has advanced.
TEST(DirectoryTest, WorkerCacheInvalidatedByCompaction) {
  CormConfig config;
  config.num_workers = 2;
  config.fragmentation_threshold = 1.01;
  config.collection_max_occupancy = 1.0;
  ASSERT_TRUE(config.dir_cache);  // the path under test
  CormNode node(config);

  constexpr uint32_t kPayload = 48;
  auto addrs = node.BulkAlloc(512, kPayload);
  ASSERT_TRUE(addrs.ok());

  auto ctx = Context::Create(&node);
  std::vector<uint8_t> buf(kPayload);
  for (auto& a : *addrs) ASSERT_TRUE(ctx->Read(&a, buf.data(), kPayload).ok());

  // Fragment (free every other object), then merge blocks.
  std::vector<GlobalAddr> doomed;
  std::vector<GlobalAddr> live;
  for (size_t i = 0; i < addrs->size(); ++i) {
    ((i & 1) ? doomed : live).push_back((*addrs)[i]);
  }
  ASSERT_TRUE(node.BulkFree(doomed).ok());
  const uint64_t epoch_before = node.directory_for_testing().epoch();
  auto report = node.Compact(*node.ClassForPayload(kPayload));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->blocks_freed, 0u);
  EXPECT_GT(node.directory_for_testing().epoch(), epoch_before);

  // Every cached entry a worker held for a merged-away base is now stale;
  // reads must still resolve (server-side correction) via refetch.
  for (auto& a : live) {
    ASSERT_TRUE(ctx->Read(&a, buf.data(), kPayload).ok());
  }
  const NodeStats stats = node.stats();
  EXPECT_GT(stats.dir_cache_hits, 0u);
  EXPECT_GT(stats.dir_cache_misses, 0u);
}

}  // namespace
}  // namespace corm::core
