// Tests for the workload generators and the trace runner.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "alloc/size_classes.h"
#include "common/byte_units.h"
#include "workload/redis_trace.h"
#include "workload/synthetic_trace.h"
#include "workload/trace_io.h"
#include "workload/trace_runner.h"
#include "workload/ycsb.h"

namespace corm::workload {
namespace {

TEST(SyntheticTraceTest, StructureMatchesParameters) {
  Trace trace = MakeSyntheticTrace(1000, 256, 0.4, 1);
  size_t allocs = 0, frees = 0;
  std::set<uint64_t> freed;
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kAlloc) {
      ++allocs;
      EXPECT_EQ(op.size, 256u);
    } else {
      ++frees;
      EXPECT_TRUE(freed.insert(op.target).second) << "double free in trace";
      EXPECT_LT(op.target, 1000u);
    }
  }
  EXPECT_EQ(allocs, 1000u);
  EXPECT_EQ(frees, 400u);
}

TEST(SyntheticTraceTest, DeterministicPerSeed) {
  Trace a = MakeSyntheticTrace(500, 64, 0.5, 7);
  Trace b = MakeSyntheticTrace(500, 64, 0.5, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
  }
}

TEST(RedisTraceTest, T1Contents) {
  Trace trace = MakeRedisTraceT1(1);
  EXPECT_EQ(trace.size(), 20000u);  // 10k keys + 10k values, no frees
  uint64_t keys = 0;
  for (const TraceOp& op : trace) {
    ASSERT_EQ(op.kind, TraceOp::Kind::kAlloc);
    if (op.size == 8) {
      ++keys;
    } else {
      EXPECT_GE(op.size, 1u);
      EXPECT_LE(op.size, 16 * kKiB);
    }
  }
  EXPECT_EQ(keys, 10000u);
}

TEST(RedisTraceTest, T2EvictsAtCapacity) {
  Trace trace = MakeRedisTraceT2(1);
  uint64_t allocs = 0, frees = 0;
  int64_t live_bytes = 0;
  std::map<uint64_t, uint32_t> alloc_sizes;
  int64_t peak = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    if (op.kind == TraceOp::Kind::kAlloc) {
      ++allocs;
      alloc_sizes[i] = op.size;
      live_bytes += op.size;
    } else {
      ++frees;
      live_bytes -= alloc_sizes.at(op.target);
    }
    peak = std::max(peak, live_bytes);
  }
  EXPECT_EQ(allocs, 2u * (700'000 + 170'000));
  EXPECT_GT(frees, 0u) << "LRU must evict beyond 100 MiB";
  EXPECT_LE(peak, static_cast<int64_t>(101 * kMiB));
  // Cache ends full (within one entry of capacity).
  EXPECT_GT(live_bytes, static_cast<int64_t>(99 * kMiB));
}

TEST(RedisTraceTest, T3RemovesHalfTheBatch) {
  Trace trace = MakeRedisTraceT3(1);
  uint64_t big = 0, small_vals = 0, frees = 0;
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kFree) {
      ++frees;
    } else if (op.size == 160 * kKiB) {
      ++big;
    } else if (op.size == 150) {
      ++small_vals;
    }
  }
  EXPECT_EQ(big, 5u);
  EXPECT_EQ(small_vals, 50000u);
  EXPECT_EQ(frees, 2u * 25000);  // key + value per removed entry
}

TEST(TraceRunnerTest, SyntheticTraceThroughSimulator) {
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);
  baseline::SimConfig config;
  config.algorithm = baseline::Algorithm::kCorm;
  config.id_bits = 16;
  config.block_bytes = kMiB;
  Trace trace = MakeSyntheticTrace(20000, 2048, 0.7, 3);
  TraceResult result = RunTrace(trace, config, &classes);
  EXPECT_EQ(result.live_bytes, 6000u * 2048);
  EXPECT_LE(result.active_bytes_after, result.active_bytes_before);
  EXPECT_GE(result.active_bytes_after, result.ideal_bytes);
  EXPECT_GT(result.compaction.merges, 0u);
}

TEST(TraceRunnerTest, RedisTracesRunUnderAllAlgorithms) {
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);
  Trace trace = MakeRedisTraceT3(1);
  uint64_t mesh_after = 0, corm_after = 0;
  for (auto algo :
       {baseline::Algorithm::kNone, baseline::Algorithm::kMesh,
        baseline::Algorithm::kCorm, baseline::Algorithm::kHybrid}) {
    baseline::SimConfig config;
    config.algorithm = algo;
    config.id_bits = 16;
    config.block_bytes = kMiB;
    config.num_threads = 8;
    TraceResult result = RunTrace(trace, config, &classes);
    EXPECT_GE(result.active_bytes_after, result.live_bytes);
    if (algo == baseline::Algorithm::kMesh) mesh_after = result.active_bytes_after;
    if (algo == baseline::Algorithm::kHybrid) corm_after = result.active_bytes_after;
  }
  // Hybrid CoRM-16 is at least competitive with Mesh on t3 (§4.4.3 shows
  // an improvement; allow a small overhead-induced slack).
  EXPECT_LE(corm_after, mesh_after + mesh_after / 10);
}

// --- Trace I/O ----------------------------------------------------------------

TEST(TraceIoTest, SaveLoadRoundTrip) {
  Trace trace = MakeSyntheticTrace(500, 128, 0.5, 3);
  std::stringstream buffer;
  ASSERT_TRUE(SaveTrace(trace, &buffer).ok());
  auto loaded = LoadTrace(&buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].kind, trace[i].kind);
    EXPECT_EQ((*loaded)[i].size, trace[i].size);
    EXPECT_EQ((*loaded)[i].target, trace[i].target);
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return LoadTrace(&in).status();
  };
  EXPECT_TRUE(parse("x 5\n").code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(parse("a 0\n").code() == StatusCode::kInvalidArgument);
  // Free of a non-alloc line / forward reference / double free.
  EXPECT_TRUE(parse("f 0\n").code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(parse("a 8\nf 0\nf 0\n").code() ==
              StatusCode::kInvalidArgument);
  EXPECT_TRUE(parse("a 8\nf 1\n").code() == StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, CommentsAndBlanksIgnored) {
  std::stringstream in("# header\n\na 64\n# mid\nf 0\n");
  auto trace = LoadTrace(&in);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ((*trace)[1].target, 0u);  // indices count trace ops, not lines
}

// --- YCSB -------------------------------------------------------------------

TEST(YcsbTest, ReadFractionRespected) {
  YcsbConfig config;
  config.num_keys = 1000;
  config.read_fraction = 0.95;
  YcsbGenerator gen(config);
  int reads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) reads += gen.Next().is_read;
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.95, 0.01);
}

TEST(YcsbTest, UniformKeysCoverSpace) {
  YcsbConfig config;
  config.num_keys = 100;
  YcsbGenerator gen(config);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(gen.Next().key);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(YcsbTest, ZipfSkewsToHead) {
  YcsbConfig config;
  config.num_keys = 1'000'000;
  config.zipf_theta = 0.99;
  YcsbGenerator gen(config);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) head += gen.Next().key < 1000;
  EXPECT_GT(head, n / 4);  // the hot head dominates
}

}  // namespace
}  // namespace corm::workload
