// Unit tests for the virtual-address reuse tracker (§3.3) and the RPC wire
// protocol encoding.

#include <gtest/gtest.h>

#include "core/rpc_protocol.h"
#include "core/vaddr_tracker.h"

namespace corm::core {
namespace {

constexpr sim::VAddr kA = sim::AddressSpace::kBase;
constexpr sim::VAddr kB = sim::AddressSpace::kBase + 0x1000;
constexpr sim::VAddr kC = sim::AddressSpace::kBase + 0x2000;

TEST(VaddrTrackerTest, CountsLiveHomedObjects) {
  VaddrTracker tracker;
  tracker.OnAlloc(kA);
  tracker.OnAlloc(kA);
  EXPECT_EQ(tracker.LiveHomed(kA), 2u);
  EXPECT_FALSE(tracker.OnFree(kA).has_value());
  EXPECT_EQ(tracker.LiveHomed(kA), 1u);
  EXPECT_FALSE(tracker.OnFree(kA).has_value());  // non-ghost: no release
  EXPECT_EQ(tracker.LiveHomed(kA), 0u);
}

TEST(VaddrTrackerTest, GhostReleasedWhenLastHomedObjectDies) {
  VaddrTracker tracker;
  tracker.OnAlloc(kA);
  tracker.OnAlloc(kA);
  auto immediate = tracker.MarkGhost(kA, /*r_key=*/7, nullptr);
  EXPECT_FALSE(immediate.has_value());  // two objects still homed
  EXPECT_EQ(tracker.NumGhosts(), 1u);
  EXPECT_FALSE(tracker.OnFree(kA).has_value());
  auto release = tracker.OnFree(kA);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->base, kA);
  EXPECT_EQ(release->r_key, 7u);
  EXPECT_EQ(tracker.NumGhosts(), 0u);
}

TEST(VaddrTrackerTest, EmptyGhostReleasedImmediately) {
  VaddrTracker tracker;
  auto release = tracker.MarkGhost(kA, 9, nullptr);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->base, kA);
}

TEST(VaddrTrackerTest, RehomeMovesTheCount) {
  VaddrTracker tracker;
  tracker.OnAlloc(kA);
  tracker.MarkGhost(kA, 1, nullptr);
  // ReleasePtr: the object is now homed in kB; kA can be released.
  auto release = tracker.OnRehome(kA, kB);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->base, kA);
  EXPECT_EQ(tracker.LiveHomed(kB), 1u);
  EXPECT_FALSE(tracker.OnFree(kB).has_value());
}

TEST(VaddrTrackerTest, RetargetGhosts) {
  VaddrTracker tracker;
  auto* block_b = reinterpret_cast<alloc::Block*>(0x1);
  auto* block_c = reinterpret_cast<alloc::Block*>(0x2);
  tracker.OnAlloc(kA);
  tracker.MarkGhost(kA, 1, block_b);
  tracker.SetAliasTarget(kA, block_c);
  auto release = tracker.OnFree(kA);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->alias_of, block_c);
}

TEST(VaddrTrackerTest, RetargetAllGhostsOfBlock) {
  VaddrTracker tracker;
  auto* block_b = reinterpret_cast<alloc::Block*>(0x1);
  auto* block_c = reinterpret_cast<alloc::Block*>(0x2);
  tracker.OnAlloc(kA);
  tracker.OnAlloc(kB);
  tracker.MarkGhost(kA, 1, block_b);
  tracker.MarkGhost(kB, 2, block_b);
  tracker.RetargetGhosts(block_b, block_c);
  auto r1 = tracker.OnFree(kA);
  auto r2 = tracker.OnFree(kB);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->alias_of, block_c);
  EXPECT_EQ(r2->alias_of, block_c);
}

TEST(VaddrTrackerTest, MixedHomesInterleaved) {
  VaddrTracker tracker;
  for (int i = 0; i < 10; ++i) tracker.OnAlloc(kA);
  for (int i = 0; i < 5; ++i) tracker.OnAlloc(kB);
  tracker.MarkGhost(kB, 3, nullptr);
  // Draining kA (non-ghost) never yields releases.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(tracker.OnFree(kA).has_value());
  // Draining kB yields exactly one release, at the end.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(tracker.OnFree(kB).has_value());
  EXPECT_TRUE(tracker.OnFree(kB).has_value());
}

TEST(VaddrTrackerTest, BlockDestroyedClearsEntry) {
  VaddrTracker tracker;
  tracker.OnAlloc(kC);
  tracker.OnFree(kC);
  tracker.OnBlockDestroyed(kC);  // count already zero: fine
  EXPECT_EQ(tracker.LiveHomed(kC), 0u);
}

// --- RPC protocol encoding ---------------------------------------------------

TEST(RpcProtocolTest, RequestRoundTripWithPayload) {
  WriteRequest req;
  req.addr.vaddr = 0xABCDEF;
  req.addr.obj_id = 77;
  req.size = 5;
  Buffer wire;
  const char payload[] = "hello";
  EncodeRequest(RpcOp::kWrite, req, &wire, Slice(payload, 5));
  EXPECT_EQ(PeekOp(wire), RpcOp::kWrite);
  WriteRequest out;
  Slice rest = DecodeRequest(wire, &out);
  EXPECT_EQ(out.addr.vaddr, req.addr.vaddr);
  EXPECT_EQ(out.addr.obj_id, req.addr.obj_id);
  EXPECT_EQ(out.size, req.size);
  EXPECT_EQ(rest.ToString(), "hello");
}

TEST(RpcProtocolTest, ResponseRoundTrip) {
  ReadResponse resp;
  resp.addr.vaddr = 42;
  resp.size = 3;
  Buffer wire;
  const char payload[] = "abc";
  EncodeResponse(resp, &wire, Slice(payload, 3));
  ReadResponse out;
  Slice rest = DecodeResponse(wire, &out);
  EXPECT_EQ(out.addr.vaddr, 42u);
  EXPECT_EQ(out.size, 3u);
  EXPECT_EQ(rest.ToString(), "abc");
}

TEST(RpcProtocolTest, EmptyPayloadRequests) {
  FreeRequest req;
  req.addr.obj_id = 5;
  Buffer wire;
  EncodeRequest(RpcOp::kFree, req, &wire);
  EXPECT_EQ(wire.size(), 1 + sizeof(FreeRequest));
  FreeRequest out;
  Slice rest = DecodeRequest(wire, &out);
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(out.addr.obj_id, 5u);
}

}  // namespace
}  // namespace corm::core
