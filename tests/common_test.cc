// Unit tests for src/common: Status/Result, Rng, Zipf, Histogram,
// MpmcQueue, math utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/byte_units.h"
#include "common/histogram.h"
#include "common/math_util.h"
#include "common/mpmc_queue.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/zipf.h"

namespace corm {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ObjectMoved("hint stale");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsObjectMoved());
  EXPECT_EQ(st.message(), "hint stale");
  EXPECT_EQ(st.ToString(), "ObjectMoved: hint stale");
}

TEST(StatusTest, CopyAndMove) {
  Status st = Status::TornRead("versions differ");
  Status copy = st;
  EXPECT_TRUE(copy.IsTornRead());
  EXPECT_TRUE(st.IsTornRead());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsTornRead());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code : {0, 1, 2, 3, 4, 5, 6, 10, 11, 12, 13, 14, 15}) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(ResultTest, ValueAccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --- Zipf --------------------------------------------------------------------

TEST(ZipfTest, KeysInRange) {
  ZipfGenerator zipf(1000, 0.99, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewFavorsSmallKeys) {
  ZipfGenerator zipf(100000, 0.99, 3);
  uint64_t in_top_100 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 100) ++in_top_100;
  }
  // With theta=0.99 the head is very hot: far beyond the uniform 0.1%.
  EXPECT_GT(in_top_100, static_cast<uint64_t>(n) / 5);
}

TEST(ZipfTest, LowThetaApproachesUniform) {
  ZipfGenerator zipf(1000, 0.01, 3);
  uint64_t in_top_100 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 100) ++in_top_100;
  }
  EXPECT_NEAR(static_cast<double>(in_top_100) / n, 0.1, 0.05);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_NEAR(h.Mean(), 50500, 1);
  // Log-linear buckets keep ~6% relative error.
  EXPECT_NEAR(static_cast<double>(h.Median()), 50000, 4000);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 99000, 7000);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Median(), 7u);
}

// --- MpmcQueue ---------------------------------------------------------------

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(9));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<uint64_t> q(1024);
  constexpr int kProducers = 4, kConsumers = 4;
  constexpr uint64_t kPerProducer = 20000;
  std::atomic<uint64_t> sum{0}, popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t v = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        while (!q.TryPush(v)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < kProducers * kPerProducer) {
        if (auto v = q.TryPop()) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

// --- Math utilities ----------------------------------------------------------

TEST(MathTest, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 5)), 252.0, 1e-6);
  EXPECT_TRUE(std::isinf(LogBinomial(3, 5)));
}

TEST(MathTest, BinomialRatio) {
  // C(4,2)/C(6,2) = 6/15 = 0.4
  EXPECT_NEAR(BinomialRatio(4, 6, 2), 0.4, 1e-12);
  EXPECT_EQ(BinomialRatio(1, 6, 2), 0.0);  // C(1,2) = 0
}

TEST(ByteUnitsTest, AlignAndFormat) {
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(48));
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2.00 GiB");
}

TEST(SliceTest, BasicsAndEquality) {
  std::string s = "hello";
  Slice a(s), b("hello", 5), c("help", 4);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(Slice().empty());
}

}  // namespace
}  // namespace corm
