// Quickstart: stand up a CoRM node, connect a client context, and run the
// full Table 2 API — Alloc, Write, Read, DirectRead, ScanRead, ReleasePtr,
// Free — plus one compaction.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/corm_node.h"

using corm::core::Context;
using corm::core::CormConfig;
using corm::core::CormNode;
using corm::core::GlobalAddr;

int main() {
  corm::sim::SetSimTimeScale(0.0);  // run at CPU speed; see DESIGN.md §2

  // A CoRM memory node: 8 worker threads, 4 KiB blocks, 16-bit object IDs,
  // ODP+prefetch remapping — the paper's default configuration.
  CormConfig config;
  CormNode node(config);

  // CreateCtx(ip, port) analogue: connect a client (QP + RPC endpoint).
  auto ctx = Context::Create(&node);

  // Allocate a 100-byte object. The returned 128-bit pointer carries the
  // virtual address, the RDMA r_key, the block-local object ID and the
  // size class.
  auto addr = ctx->Alloc(100);
  if (!addr.ok()) {
    std::fprintf(stderr, "alloc failed: %s\n",
                 addr.status().ToString().c_str());
    return 1;
  }
  std::printf("allocated 100 B at vaddr=0x%llx r_key=%u obj_id=%u\n",
              static_cast<unsigned long long>(addr->vaddr), addr->r_key,
              addr->obj_id);

  // Write through RPC.
  const char message[] = "hello, compactable remote memory!";
  if (!ctx->Write(&*addr, message, sizeof(message)).ok()) return 1;

  // Read it back three ways.
  char buf[100] = {};
  if (!ctx->Read(&*addr, buf, sizeof(message)).ok()) return 1;  // RPC read
  std::printf("RPC read      : %s\n", buf);
  std::memset(buf, 0, sizeof(buf));
  // One-sided, lock-free read.
  if (!ctx->DirectRead(*addr, buf, sizeof(message)).ok()) return 1;
  std::printf("RDMA read     : %s\n", buf);
  std::memset(buf, 0, sizeof(buf));
  GlobalAddr scan_addr = *addr;
  if (!ctx->ScanRead(&scan_addr, buf, sizeof(message)).ok()) return 1;
  std::printf("RDMA scan read: %s\n", buf);

  // Fragment the node a little and compact.
  std::vector<GlobalAddr> extras;
  for (int i = 0; i < 512; ++i) {
    auto extra = ctx->Alloc(100);
    if (extra.ok()) extras.push_back(*extra);
  }
  for (size_t i = 0; i < extras.size(); i += 2) {
    if (!ctx->Free(&extras[i]).ok()) return 1;
  }
  std::printf("before compaction: %s active\n",
              corm::FormatBytes(node.ActiveMemoryBytes()).c_str());
  auto report = node.CompactIfFragmented();
  if (report.ok() && !report->empty()) {
    std::printf("compacted class %u: %zu blocks freed, %zu objects moved\n",
                (*report)[0].class_idx, (*report)[0].blocks_freed,
                (*report)[0].objects_moved);
  }
  std::printf("after compaction:  %s active\n",
              corm::FormatBytes(node.ActiveMemoryBytes()).c_str());

  // Our object may have moved — reads recover transparently.
  std::memset(buf, 0, sizeof(buf));
  if (ctx->ReadWithRecovery(&*addr, buf, sizeof(message)).ok()) {
    std::printf("after compaction, object still reads: %s\n", buf);
  }

  // Release the old virtual address (§3.3) and free the object.
  if (!ctx->ReleasePtr(&*addr).ok()) return 1;
  if (!ctx->Free(&*addr).ok()) return 1;
  std::printf("done. node stats: %llu RPC reads, %llu direct reads served\n",
              static_cast<unsigned long long>(node.stats().rpc_reads),
              static_cast<unsigned long long>(
                  node.rnic()->stats().reads.load()));
  return 0;
}
