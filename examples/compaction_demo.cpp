// compaction_demo: a guided tour of CoRM's pointer lifecycle (paper §3.1-
// §3.3): direct pointer -> compaction -> indirect pointer -> correction ->
// ReleasePtr -> virtual address reuse. Prints each state transition.
//
//   $ ./examples/compaction_demo

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

const char* Describe(Context* ctx, const GlobalAddr& addr, uint32_t size) {
  std::vector<uint8_t> buf(size);
  Status st = ctx->DirectRead(addr, buf.data(), size);
  if (st.ok()) return "DIRECT (one-sided read succeeds at the hinted offset)";
  if (st.IsObjectMoved()) return "INDIRECT (hint stale; needs correction)";
  if (st.IsStalePointer() || st.IsQpBroken()) return "DEAD (address released)";
  return "BUSY (locked/torn; retry)";
}

}  // namespace

int main() {
  sim::SetSimTimeScale(0.0);
  core::CormConfig config;
  config.num_workers = 2;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  constexpr uint32_t kSize = 56;  // 64 B slots, 64 per 4 KiB block

  std::printf("== 1. allocate objects across several blocks ==\n");
  std::vector<GlobalAddr> addrs;
  for (int i = 0; i < 256; ++i) {
    auto addr = ctx->Alloc(kSize);
    CORM_CHECK(addr.ok());
    char payload[kSize];
    std::snprintf(payload, sizeof(payload), "object-%d", i);
    CORM_CHECK(ctx->Write(&*addr, payload, kSize).ok());
    addrs.push_back(*addr);
  }
  GlobalAddr& tracked = addrs[3];
  std::printf("tracking object-3 at vaddr=0x%llx id=%u: %s\n",
              static_cast<unsigned long long>(tracked.vaddr), tracked.obj_id,
              Describe(ctx.get(), tracked, kSize));
  std::printf("virtual space reserved: %s, physical: %s\n",
              FormatBytes(node.VirtualMemoryBytes()).c_str(),
              FormatBytes(node.ActiveMemoryBytes()).c_str());

  std::printf("\n== 2. random frees fragment the blocks ==\n");
  Rng rng(5);
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i != 3 && rng.Chance(0.6)) CORM_CHECK(ctx->Free(&addrs[i]).ok());
  }
  auto frag = node.Fragmentation();
  for (const auto& cls : frag) {
    if (cls.num_blocks > 0) {
      std::printf("class %u B: %zu blocks, fragmentation ratio %.2f\n",
                  node.classes().ClassSize(cls.class_idx), cls.num_blocks,
                  cls.Ratio());
    }
  }

  std::printf("\n== 3. compact ==\n");
  auto report = node.CompactIfFragmented();
  CORM_CHECK(report.ok());
  for (const auto& r : *report) {
    std::printf("collected %zu blocks, freed %zu, moved %zu objects "
                "(%zu relocated to new offsets)\n",
                r.blocks_collected, r.blocks_freed, r.objects_moved,
                r.objects_relocated);
  }
  std::printf("tracked pointer now: %s\n",
              Describe(ctx.get(), tracked, kSize));
  std::printf("ghost virtual ranges awaiting release: %zu\n",
              node.vaddr_ghosts_for_testing());
  std::printf("virtual space reserved: %s, physical: %s\n",
              FormatBytes(node.VirtualMemoryBytes()).c_str(),
              FormatBytes(node.ActiveMemoryBytes()).c_str());

  std::printf("\n== 4. correct the pointer (ScanRead) ==\n");
  char buf[kSize];
  GlobalAddr before = tracked;
  CORM_CHECK(ctx->ReadWithRecovery(&tracked, buf, kSize).ok());
  std::printf("read back: \"%s\"\n", buf);
  if (tracked.vaddr != before.vaddr) {
    std::printf("pointer corrected: offset 0x%llx -> 0x%llx (same block "
                "base, new offset hint)\n",
                static_cast<unsigned long long>(before.vaddr),
                static_cast<unsigned long long>(tracked.vaddr));
  }
  std::printf("tracked pointer now: %s\n",
              Describe(ctx.get(), tracked, kSize));
  if (tracked.ReferencesOldBlock()) {
    std::printf("note: CoRM flagged the pointer as referencing an OLD block "
                "(the vaddr belongs to a compacted-away ghost, §3.3)\n");
  }

  std::printf("\n== 5. ReleasePtr: re-home and release old addresses ==\n");
  for (auto& addr : addrs) {
    if (addr.IsNull()) continue;
    CORM_CHECK(ctx->ReleasePtr(&addr).ok());
  }
  std::printf("ghost virtual ranges now: %zu\n",
              node.vaddr_ghosts_for_testing());
  std::printf("virtual space reserved: %s (old block addresses recycled)\n",
              FormatBytes(node.VirtualMemoryBytes()).c_str());
  std::printf("tracked pointer (canonical, in its current block): %s\n",
              Describe(ctx.get(), tracked, kSize));

  std::printf("\n== 6. the released virtual range is reused ==\n");
  std::vector<GlobalAddr> fresh;
  for (int i = 0; i < 128; ++i) {
    auto addr = ctx->Alloc(kSize);
    CORM_CHECK(addr.ok());
    fresh.push_back(*addr);
  }
  std::printf("virtual space after reallocating: %s — no growth beyond the\n"
              "released ranges, i.e. CoRM reuses virtual addresses (§3.3)\n",
              FormatBytes(node.VirtualMemoryBytes()).c_str());
  return 0;
}
