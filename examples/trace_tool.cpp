// trace_tool: generate, inspect, and replay allocation traces through every
// compaction strategy — a CLI front-end to the memory-study engine.
//
//   trace_tool gen  <synthetic|redis-t1|redis-t2|redis-t3> <out.trace> [args]
//       synthetic args: <count> <object_size> <dealloc_rate>
//   trace_tool info <trace>
//   trace_tool run  <trace> [threads] [block_kib]
//
//   $ ./examples/trace_tool gen synthetic /tmp/spike.trace 100000 2048 0.8
//   $ ./examples/trace_tool run /tmp/spike.trace 8 1024

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "alloc/size_classes.h"
#include "baseline/compaction_sim.h"
#include "common/byte_units.h"
#include "workload/redis_trace.h"
#include "workload/synthetic_trace.h"
#include "workload/trace_io.h"
#include "workload/trace_runner.h"

using namespace corm;
using namespace corm::workload;

namespace {

int Gen(int argc, char** argv) {
  if (argc < 4) return 1;
  const std::string kind = argv[2];
  const std::string out = argv[3];
  Trace trace;
  if (kind == "synthetic") {
    if (argc < 7) {
      std::fprintf(stderr,
                   "synthetic needs: <count> <object_size> <dealloc_rate>\n");
      return 1;
    }
    trace = MakeSyntheticTrace(std::strtoull(argv[4], nullptr, 10),
                               static_cast<uint32_t>(std::atoi(argv[5])),
                               std::atof(argv[6]), /*seed=*/42);
  } else if (kind == "redis-t1") {
    trace = MakeRedisTraceT1(7);
  } else if (kind == "redis-t2") {
    trace = MakeRedisTraceT2(7);
  } else if (kind == "redis-t3") {
    trace = MakeRedisTraceT3(7);
  } else {
    std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
    return 1;
  }
  Status st = SaveTraceFile(trace, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu ops to %s\n", trace.size(), out.c_str());
  return 0;
}

int Info(const std::string& path) {
  auto trace = LoadTraceFile(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  uint64_t allocs = 0, frees = 0, bytes = 0, peak = 0, live = 0;
  for (const TraceOp& op : *trace) {
    if (op.kind == TraceOp::Kind::kAlloc) {
      ++allocs;
      bytes += op.size;
      live += op.size;
    } else {
      ++frees;
      live -= (*trace)[op.target].size;
    }
    peak = std::max(peak, live);
  }
  std::printf("%s: %zu ops (%llu allocs, %llu frees), %s allocated total,\n"
              "peak live %s, final live %s\n",
              path.c_str(), trace->size(),
              static_cast<unsigned long long>(allocs),
              static_cast<unsigned long long>(frees),
              FormatBytes(bytes).c_str(), FormatBytes(peak).c_str(),
              FormatBytes(live).c_str());
  return 0;
}

int Run(const std::string& path, int threads, size_t block_kib) {
  auto trace = LoadTraceFile(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  auto classes = alloc::SizeClassTable::JemallocLike(256 * kKiB);
  std::printf("%-16s %-14s %-14s %-10s %s\n", "strategy", "before", "after",
              "merges", "vs-ideal");
  struct Strategy {
    baseline::Algorithm algo;
    int bits;
  };
  for (const Strategy& strategy :
       {Strategy{baseline::Algorithm::kNone, 0},
        Strategy{baseline::Algorithm::kMesh, 0},
        Strategy{baseline::Algorithm::kCorm, 8},
        Strategy{baseline::Algorithm::kCorm, 16},
        Strategy{baseline::Algorithm::kHybrid, 16},
        Strategy{baseline::Algorithm::kAdaptive, 0}}) {
    baseline::SimConfig config;
    config.algorithm = strategy.algo;
    config.id_bits = strategy.bits;
    config.block_bytes = block_kib * kKiB;
    config.num_threads = threads;
    auto result = RunTrace(*trace, config, &classes);
    std::printf("%-16s %-14s %-14s %-10zu %.2fx\n",
                baseline::AlgorithmName(strategy.algo, strategy.bits),
                FormatBytes(result.active_bytes_before).c_str(),
                FormatBytes(result.active_bytes_after).c_str(),
                result.compaction.merges,
                result.ideal_bytes
                    ? static_cast<double>(result.active_bytes_after) /
                          static_cast<double>(result.ideal_bytes)
                    : 0.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_tool gen <kind> <out> [args...]\n"
                 "       trace_tool info <trace>\n"
                 "       trace_tool run <trace> [threads] [block_kib]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return Gen(argc, argv);
  if (cmd == "info") return Info(argv[2]);
  if (cmd == "run") {
    return Run(argv[2], argc > 3 ? std::atoi(argv[3]) : 8,
               argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1024);
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
