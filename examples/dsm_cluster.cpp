// dsm_cluster: a 4-node distributed shared memory with per-node CoRM
// compaction and primary-backup replication (the paper's deployment
// setting plus its §3.2.4 future-work direction).
//
//   $ ./examples/dsm_cluster

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/object_layout.h"
#include "dsm/cluster.h"
#include "dsm/dsm_context.h"
#include "dsm/replication.h"

using namespace corm;
using namespace corm::dsm;
using core::GlobalAddr;

int main() {
  sim::SetSimTimeScale(0.0);
  ClusterConfig config;
  config.num_nodes = 4;
  config.node_config.num_workers = 2;
  Cluster cluster(config);
  DsmContext ctx(&cluster);

  std::printf("== 1. one shared memory across %d CoRM nodes ==\n",
              cluster.num_nodes());
  std::vector<GlobalAddr> addrs;
  std::vector<uint8_t> buf(120);
  for (int i = 0; i < 4000; ++i) {
    auto addr = ctx.Alloc(120);
    if (!addr.ok()) return 1;
    core::PatternFill(i, buf.data(), 120);
    ctx.Write(&*addr, buf.data(), 120).ok();
    addrs.push_back(*addr);
  }
  std::printf("allocated 4000 objects; cluster active memory: %s\n",
              FormatBytes(cluster.TotalActiveMemoryBytes()).c_str());

  std::printf("\n== 2. fragmentation + cluster-wide compaction ==\n");
  Rng rng(9);
  std::vector<GlobalAddr> survivors;
  std::vector<int> idx;
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (rng.Chance(0.7)) {
      ctx.Free(&addrs[i]).ok();
    } else {
      survivors.push_back(addrs[i]);
      idx.push_back(static_cast<int>(i));
    }
  }
  const uint64_t before = cluster.TotalActiveMemoryBytes();
  auto reports = cluster.CompactAllIfFragmented();
  size_t freed = 0;
  for (const auto& r : *reports) freed += r.blocks_freed;
  std::printf("compacted %zu classes across nodes, %zu blocks freed: "
              "%s -> %s\n",
              reports->size(), freed, FormatBytes(before).c_str(),
              FormatBytes(cluster.TotalActiveMemoryBytes()).c_str());

  size_t verified = 0;
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (ctx.ReadWithRecovery(&survivors[i], buf.data(), 120).ok() &&
        core::PatternCheck(idx[i], buf.data(), 120)) {
      ++verified;
    }
  }
  std::printf("verified %zu/%zu survivors across all nodes\n", verified,
              survivors.size());

  std::printf("\n== 3. replication: reads survive a node failure ==\n");
  ReplicatedContext rctx(&cluster, /*replication_factor=*/3);
  auto robj = rctx.Alloc(200);
  if (!robj.ok()) return 1;
  std::vector<uint8_t> data(200);
  core::PatternFill(777, data.data(), 200);
  rctx.Write(&*robj, data.data(), 200).ok();
  std::printf("object replicated on nodes:");
  for (const auto& replica : robj->replicas) {
    std::printf(" %d", NodeOf(replica));
  }
  const int victim = NodeOf(robj->primary());
  std::printf("\nkilling primary node %d...\n", victim);
  cluster.KillNode(victim);
  std::vector<uint8_t> out(200);
  if (rctx.Read(&*robj, out.data(), 200).ok() &&
      core::PatternCheck(777, out.data(), 200)) {
    std::printf("read failed over to a backup replica: data intact "
                "(%llu failovers)\n",
                static_cast<unsigned long long>(rctx.failovers()));
  } else {
    std::printf("FAILOVER FAILED\n");
    return 1;
  }
  cluster.ReviveNode(victim);
  std::printf("\ndone: compaction stayed node-local and never disturbed\n"
              "cross-node pointers or replicas.\n");
  return verified == survivors.size() ? 0 : 1;
}
