// kv_cache: a remote caching service built on the CoRM public API — the
// paper's motivating deployment (in-memory caches suffer badly from
// fragmentation; §1 cites up to 69% waste in Redis-class systems).
//
// A CacheClient stores variable-size values in CoRM and keeps a local index
// of 128-bit pointers. Gets use one-sided RDMA with automatic recovery, so
// they keep working while the server compacts. The demo drives a churn
// phase (inserts + deletes of mixed sizes), then compacts, then verifies
// every cached entry — demonstrating the 2-6x active-memory reduction with
// zero lost entries.
//
//   $ ./examples/kv_cache [entries]

#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "core/object_layout.h"

using namespace corm;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

// A minimal remote KV cache: string keys -> CoRM objects.
class CacheClient {
 public:
  explicit CacheClient(CormNode* node) : ctx_(Context::Create(node)) {}

  bool Put(const std::string& key, const std::string& value) {
    Del(key);
    auto addr = ctx_->Alloc(value.size());
    if (!addr.ok()) return false;
    if (!ctx_->Write(&*addr, value.data(), value.size()).ok()) return false;
    index_[key] = Entry{*addr, value.size()};
    return true;
  }

  // One-sided read with recovery: survives concurrent compaction and
  // repairs the cached pointer in place (§3.2).
  bool Get(const std::string& key, std::string* value) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    value->resize(it->second.size);
    return ctx_
        ->ReadWithRecovery(&it->second.addr, value->data(), value->size(),
                           Context::MovedFallback::kScanRead)
        .ok();
  }

  void Del(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    // Best-effort: the entry leaves the index even if the free raced a
    // compaction and needs the server to reclaim it later.
    (void)ctx_->Free(&it->second.addr);
    index_.erase(it);
  }

  size_t size() const { return index_.size(); }
  const core::ClientStats& stats() const { return ctx_->stats(); }

 private:
  struct Entry {
    GlobalAddr addr;
    size_t size;
  };
  std::unique_ptr<Context> ctx_;
  std::unordered_map<std::string, Entry> index_;
};

std::string ValueFor(int i, size_t size) {
  std::string value(size, ' ');
  for (size_t j = 0; j < size; ++j) {
    value[j] = static_cast<char>('a' + (i * 31 + j) % 26);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const int entries = argc > 1 ? std::atoi(argv[1]) : 20000;

  core::CormConfig config;
  config.num_workers = 4;
  CormNode node(config);
  CacheClient cache(&node);
  Rng rng(2026);

  // Churn phase: mixed value sizes (a cache absorbing different payloads),
  // then an eviction wave — the classic allocation-spike pattern (§2.1.2).
  const size_t sizes[] = {24, 120, 500, 1500, 3500};
  std::printf("inserting %d entries of mixed sizes...\n", entries);
  for (int i = 0; i < entries; ++i) {
    const size_t size = sizes[rng.Uniform(5)];
    if (!cache.Put("key-" + std::to_string(i), ValueFor(i, size))) {
      std::fprintf(stderr, "put failed at %d\n", i);
      return 1;
    }
  }
  std::printf("evicting 70%% of entries at random...\n");
  std::vector<int> doomed;
  for (int i = 0; i < entries; ++i) {
    if (rng.Chance(0.7)) doomed.push_back(i);
  }
  for (int i : doomed) cache.Del("key-" + std::to_string(i));

  const uint64_t before = node.ActiveMemoryBytes();
  std::printf("\nactive memory after eviction wave : %s (%zu live entries)\n",
              FormatBytes(before).c_str(), cache.size());

  auto reports = node.CompactIfFragmented();
  if (!reports.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }
  size_t blocks_freed = 0, moved = 0;
  for (const auto& report : *reports) {
    blocks_freed += report.blocks_freed;
    moved += report.objects_moved;
  }
  const uint64_t after = node.ActiveMemoryBytes();
  std::printf("active memory after compaction    : %s "
              "(%.2fx reduction; %zu blocks freed, %zu objects moved)\n",
              FormatBytes(after).c_str(),
              static_cast<double>(before) / static_cast<double>(after),
              blocks_freed, moved);

  // Every surviving entry must still be retrievable, bit-exact.
  std::printf("\nverifying all %zu surviving entries over RDMA...\n",
              cache.size());
  size_t verified = 0;
  std::string value;
  for (int i = 0; i < entries; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (!cache.Get(key, &value)) continue;
    if (value != ValueFor(i, value.size())) {
      std::fprintf(stderr, "CORRUPTED entry %s\n", key.c_str());
      return 1;
    }
    ++verified;
  }
  std::printf("verified %zu entries; %llu pointers were corrected "
              "client-side, %llu scan-reads issued\n",
              verified,
              static_cast<unsigned long long>(
                  cache.stats().pointer_corrections),
              static_cast<unsigned long long>(cache.stats().scan_reads));
  std::printf("\n--- node report ---\n%s", node.DebugReport().c_str());
  return verified == cache.size() ? 0 : 1;
}
