// ycsb_runner: configurable YCSB client fleet against a CoRM node.
//
//   $ ./examples/ycsb_runner [--objects=N] [--clients=N] [--theta=T]
//                            [--reads=F] [--ops=N] [--rdma=0|1]
//
// Runs real client threads (genuine contention on the node) and reports
// per-op modeled latency percentiles plus the bottleneck-model throughput
// (same method as bench_fig12_ycsb).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "core/client.h"
#include "core/corm_node.h"
#include "workload/ycsb.h"

using namespace corm;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

double FlagD(int argc, char** argv, const char* name, double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SetSimTimeScale(0.0);
  const auto objects = static_cast<size_t>(FlagD(argc, argv, "objects", 1e6));
  const int clients = static_cast<int>(FlagD(argc, argv, "clients", 8));
  const double theta = FlagD(argc, argv, "theta", 0.99);
  const double reads = FlagD(argc, argv, "reads", 0.95);
  const auto ops = static_cast<uint64_t>(FlagD(argc, argv, "ops", 50'000));
  const bool rdma = FlagD(argc, argv, "rdma", 1) != 0;

  std::printf("CoRM YCSB: %zu objects, %d clients, zipf=%.2f, reads=%.2f, "
              "%s reads\n",
              objects, clients, theta, reads, rdma ? "RDMA" : "RPC");

  core::CormConfig config;
  config.num_workers = 4;
  config.rnic_model = sim::RnicModel::kConnectX3;
  CormNode node(config);
  auto addrs = node.BulkAlloc(objects, 24);
  if (!addrs.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 addrs.status().ToString().c_str());
    return 1;
  }

  std::vector<Histogram> hists(clients);
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  node.rnic()->ResetMttCache();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto ctx = Context::Create(&node);
      workload::YcsbConfig wconfig;
      wconfig.num_keys = objects;
      wconfig.zipf_theta = theta;
      wconfig.read_fraction = reads;
      wconfig.seed = 1000 + c;
      workload::YcsbGenerator gen(wconfig);
      std::vector<uint8_t> buf(64);
      for (uint64_t i = 0; i < ops; ++i) {
        auto op = gen.Next();
        GlobalAddr addr = (*addrs)[op.key];
        Status st;
        if (op.is_read && rdma) {
          st = ctx->ReadWithRecovery(&addr, buf.data(), 24);
        } else if (op.is_read) {
          st = ctx->Read(&addr, buf.data(), 24);
        } else {
          st = ctx->Write(&addr, buf.data(), 24);
        }
        if (!st.ok()) failures.fetch_add(1);
        hists[c].Record(ctx->stats().last_op_ns);
      }
    });
  }
  for (auto& t : threads) t.join();

  Histogram all;
  for (const auto& h : hists) all.Merge(h);
  const auto& rstats = node.rnic()->stats();
  const uint64_t hits = rstats.mtt_cache_hits.load();
  const uint64_t misses = rstats.mtt_cache_misses.load();
  const double miss_rate =
      hits + misses ? static_cast<double>(misses) / (hits + misses) : 0;

  std::printf("\nmodeled per-op latency: p50=%.2fus p95=%.2fus p99=%.2fus\n",
              all.Median() / 1e3, all.Percentile(0.95) / 1e3,
              all.Percentile(0.99) / 1e3);
  std::printf("RNIC translation-cache miss rate: %.1f%%\n", miss_rate * 100);
  std::printf("op failures (transient, retried by caller policy): %llu\n",
              static_cast<unsigned long long>(failures.load()));

  // Bottleneck-model aggregate throughput (cf. bench_fig12_ycsb).
  const double avg_ns = all.Mean();
  const double rdma_frac = rdma ? reads : 0.0;
  const double rpc_frac = rdma ? 1.0 - reads : 1.0;
  double server_ns = rpc_frac * 2e9 / config.nic_msg_rate;
  const auto model = node.latency_model();
  server_ns += rdma_frac * (model.RnicReadServiceNs() +
                            miss_rate * model.MttCacheMissNs());
  const double tput =
      std::min(clients * 1e9 / avg_ns, server_ns > 0 ? 1e9 / server_ns : 1e18);
  std::printf("estimated aggregate throughput: %.0f Kreq/s\n", tput / 1e3);
  return 0;
}
