// corm_shell: an interactive (or piped) command shell over a CoRM node —
// the quickest way to poke at allocation, compaction and pointer behaviour.
//
//   $ ./examples/corm_shell <<'EOF'
//   put greeting hello-remote-memory
//   get greeting
//   fill 1000 512
//   evict 70
//   report
//   compact
//   report
//   verify
//   EOF
//
// Commands:
//   put <key> <value>      store a value
//   get <key>              fetch over one-sided RDMA (with recovery)
//   del <key>              free
//   fill <n> <size>        insert n synthetic entries of <size> bytes
//   evict <percent>        delete that percentage of entries at random
//   compact                run the fragmentation policy
//   report                 node debug report
//   verify                 re-read every entry and check its bytes
//   help / quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/client.h"
#include "core/corm_node.h"

using namespace corm;
using core::Context;
using core::CormNode;
using core::GlobalAddr;

namespace {

struct Entry {
  GlobalAddr addr;
  std::string expect;
};

std::string SyntheticValue(uint64_t i, size_t size) {
  std::string value(size, ' ');
  for (size_t j = 0; j < size; ++j) {
    value[j] = static_cast<char>('a' + (i * 131 + j * 7) % 26);
  }
  return value;
}

}  // namespace

int main() {
  sim::SetSimTimeScale(0.0);
  core::CormConfig config;
  config.num_workers = 2;
  CormNode node(config);
  auto ctx = Context::Create(&node);
  std::unordered_map<std::string, Entry> index;
  Rng rng(1);
  uint64_t fill_counter = 0;

  std::printf("corm shell — 'help' for commands\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream tokens(line);
    std::string cmd;
    tokens >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::printf("put get del fill evict compact report verify quit\n");
    } else if (cmd == "put") {
      std::string key, value;
      tokens >> key >> value;
      if (key.empty() || value.empty()) {
        std::printf("usage: put <key> <value>\n");
        continue;
      }
      auto it = index.find(key);
      if (it != index.end()) {
        ctx->Free(&it->second.addr).ok();
        index.erase(it);
      }
      auto addr = ctx->Alloc(value.size());
      if (!addr.ok() ||
          !ctx->Write(&*addr, value.data(), value.size()).ok()) {
        std::printf("error: put failed\n");
        continue;
      }
      index[key] = Entry{*addr, value};
      std::printf("ok: %s -> vaddr=0x%llx id=%u%s\n", key.c_str(),
                  static_cast<unsigned long long>(addr->vaddr), addr->obj_id,
                  addr->ReferencesOldBlock() ? " (old block)" : "");
    } else if (cmd == "get") {
      std::string key;
      tokens >> key;
      auto it = index.find(key);
      if (it == index.end()) {
        std::printf("(nil)\n");
        continue;
      }
      std::string value(it->second.expect.size(), 0);
      const uint64_t hint_before = it->second.addr.vaddr;
      Status st = ctx->ReadWithRecovery(&it->second.addr, value.data(),
                                        value.size());
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      std::printf("%s%s\n", value.c_str(),
                  it->second.addr.vaddr != hint_before
                      ? "   [pointer was corrected]"
                      : "");
    } else if (cmd == "del") {
      std::string key;
      tokens >> key;
      auto it = index.find(key);
      if (it == index.end()) {
        std::printf("(nil)\n");
        continue;
      }
      Status st = ctx->Free(&it->second.addr);
      index.erase(it);
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    } else if (cmd == "fill") {
      size_t n = 0, size = 0;
      tokens >> n >> size;
      if (n == 0 || size == 0) {
        std::printf("usage: fill <n> <size>\n");
        continue;
      }
      size_t inserted = 0;
      for (size_t i = 0; i < n; ++i) {
        const std::string key = "auto-" + std::to_string(fill_counter);
        const std::string value = SyntheticValue(fill_counter, size);
        ++fill_counter;
        auto addr = ctx->Alloc(value.size());
        if (!addr.ok()) break;
        if (!ctx->Write(&*addr, value.data(), value.size()).ok()) break;
        index[key] = Entry{*addr, value};
        ++inserted;
      }
      std::printf("inserted %zu entries; node holds %s\n", inserted,
                  FormatBytes(node.ActiveMemoryBytes()).c_str());
    } else if (cmd == "evict") {
      int percent = 0;
      tokens >> percent;
      std::vector<std::string> doomed;
      for (auto& [key, entry] : index) {
        if (rng.Chance(percent / 100.0)) doomed.push_back(key);
      }
      for (const auto& key : doomed) {
        ctx->Free(&index[key].addr).ok();
        index.erase(key);
      }
      std::printf("evicted %zu entries; %zu remain\n", doomed.size(),
                  index.size());
    } else if (cmd == "compact") {
      auto reports = node.CompactIfFragmented();
      if (!reports.ok()) {
        std::printf("error: %s\n", reports.status().ToString().c_str());
        continue;
      }
      size_t freed = 0, moved = 0;
      for (const auto& r : *reports) {
        freed += r.blocks_freed;
        moved += r.objects_moved;
      }
      std::printf("compacted %zu classes: %zu blocks freed, %zu objects "
                  "moved; node holds %s\n",
                  reports->size(), freed, moved,
                  FormatBytes(node.ActiveMemoryBytes()).c_str());
    } else if (cmd == "report") {
      std::printf("%s", node.DebugReport().c_str());
    } else if (cmd == "verify") {
      size_t ok_count = 0, bad = 0;
      for (auto& [key, entry] : index) {
        std::string value(entry.expect.size(), 0);
        if (ctx->ReadWithRecovery(&entry.addr, value.data(), value.size())
                .ok() &&
            value == entry.expect) {
          ++ok_count;
        } else {
          ++bad;
          std::printf("CORRUPT: %s\n", key.c_str());
        }
      }
      std::printf("verified %zu entries, %zu corrupt\n", ok_count, bad);
      if (bad != 0) return 1;
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
