file(REMOVE_RECURSE
  "CMakeFiles/dsm_cluster.dir/dsm_cluster.cpp.o"
  "CMakeFiles/dsm_cluster.dir/dsm_cluster.cpp.o.d"
  "dsm_cluster"
  "dsm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
