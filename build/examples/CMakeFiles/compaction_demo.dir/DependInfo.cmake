
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compaction_demo.cpp" "examples/CMakeFiles/compaction_demo.dir/compaction_demo.cpp.o" "gcc" "examples/CMakeFiles/compaction_demo.dir/compaction_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/corm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/corm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/corm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/corm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/corm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/corm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/corm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
