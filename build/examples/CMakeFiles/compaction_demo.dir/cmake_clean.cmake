file(REMOVE_RECURSE
  "CMakeFiles/compaction_demo.dir/compaction_demo.cpp.o"
  "CMakeFiles/compaction_demo.dir/compaction_demo.cpp.o.d"
  "compaction_demo"
  "compaction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
