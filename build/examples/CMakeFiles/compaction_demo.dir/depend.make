# Empty dependencies file for compaction_demo.
# This may be replaced when dependencies are built.
