# Empty dependencies file for corm_shell.
# This may be replaced when dependencies are built.
