file(REMOVE_RECURSE
  "CMakeFiles/corm_shell.dir/corm_shell.cpp.o"
  "CMakeFiles/corm_shell.dir/corm_shell.cpp.o.d"
  "corm_shell"
  "corm_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
