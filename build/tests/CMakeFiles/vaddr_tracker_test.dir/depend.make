# Empty dependencies file for vaddr_tracker_test.
# This may be replaced when dependencies are built.
