file(REMOVE_RECURSE
  "CMakeFiles/vaddr_tracker_test.dir/vaddr_tracker_test.cc.o"
  "CMakeFiles/vaddr_tracker_test.dir/vaddr_tracker_test.cc.o.d"
  "vaddr_tracker_test"
  "vaddr_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaddr_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
