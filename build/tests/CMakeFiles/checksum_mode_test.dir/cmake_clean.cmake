file(REMOVE_RECURSE
  "CMakeFiles/checksum_mode_test.dir/checksum_mode_test.cc.o"
  "CMakeFiles/checksum_mode_test.dir/checksum_mode_test.cc.o.d"
  "checksum_mode_test"
  "checksum_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checksum_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
