file(REMOVE_RECURSE
  "CMakeFiles/corm_test_main.dir/test_main.cc.o"
  "CMakeFiles/corm_test_main.dir/test_main.cc.o.d"
  "libcorm_test_main.a"
  "libcorm_test_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_test_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
