file(REMOVE_RECURSE
  "libcorm_test_main.a"
)
