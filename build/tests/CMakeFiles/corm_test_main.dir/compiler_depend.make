# Empty compiler generated dependencies file for corm_test_main.
# This may be replaced when dependencies are built.
