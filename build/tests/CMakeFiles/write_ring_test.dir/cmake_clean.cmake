file(REMOVE_RECURSE
  "CMakeFiles/write_ring_test.dir/write_ring_test.cc.o"
  "CMakeFiles/write_ring_test.dir/write_ring_test.cc.o.d"
  "write_ring_test"
  "write_ring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
