# Empty compiler generated dependencies file for write_ring_test.
# This may be replaced when dependencies are built.
