file(REMOVE_RECURSE
  "CMakeFiles/compaction_sim_test.dir/compaction_sim_test.cc.o"
  "CMakeFiles/compaction_sim_test.dir/compaction_sim_test.cc.o.d"
  "compaction_sim_test"
  "compaction_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
