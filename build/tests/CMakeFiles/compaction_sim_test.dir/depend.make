# Empty dependencies file for compaction_sim_test.
# This may be replaced when dependencies are built.
