file(REMOVE_RECURSE
  "libcorm_baseline.a"
)
