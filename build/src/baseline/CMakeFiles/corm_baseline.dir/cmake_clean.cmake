file(REMOVE_RECURSE
  "CMakeFiles/corm_baseline.dir/compaction_sim.cc.o"
  "CMakeFiles/corm_baseline.dir/compaction_sim.cc.o.d"
  "libcorm_baseline.a"
  "libcorm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
