# Empty dependencies file for corm_baseline.
# This may be replaced when dependencies are built.
