# Empty dependencies file for corm_rdma.
# This may be replaced when dependencies are built.
