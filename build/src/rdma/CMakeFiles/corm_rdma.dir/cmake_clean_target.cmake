file(REMOVE_RECURSE
  "libcorm_rdma.a"
)
