file(REMOVE_RECURSE
  "CMakeFiles/corm_rdma.dir/queue_pair.cc.o"
  "CMakeFiles/corm_rdma.dir/queue_pair.cc.o.d"
  "CMakeFiles/corm_rdma.dir/rnic.cc.o"
  "CMakeFiles/corm_rdma.dir/rnic.cc.o.d"
  "CMakeFiles/corm_rdma.dir/rpc_transport.cc.o"
  "CMakeFiles/corm_rdma.dir/rpc_transport.cc.o.d"
  "CMakeFiles/corm_rdma.dir/verbs.cc.o"
  "CMakeFiles/corm_rdma.dir/verbs.cc.o.d"
  "CMakeFiles/corm_rdma.dir/write_ring.cc.o"
  "CMakeFiles/corm_rdma.dir/write_ring.cc.o.d"
  "libcorm_rdma.a"
  "libcorm_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
