file(REMOVE_RECURSE
  "CMakeFiles/corm_common.dir/histogram.cc.o"
  "CMakeFiles/corm_common.dir/histogram.cc.o.d"
  "CMakeFiles/corm_common.dir/status.cc.o"
  "CMakeFiles/corm_common.dir/status.cc.o.d"
  "libcorm_common.a"
  "libcorm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
