file(REMOVE_RECURSE
  "libcorm_common.a"
)
