# Empty compiler generated dependencies file for corm_common.
# This may be replaced when dependencies are built.
