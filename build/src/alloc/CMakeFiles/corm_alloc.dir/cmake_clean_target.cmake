file(REMOVE_RECURSE
  "libcorm_alloc.a"
)
