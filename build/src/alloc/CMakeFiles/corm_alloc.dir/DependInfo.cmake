
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/block.cc" "src/alloc/CMakeFiles/corm_alloc.dir/block.cc.o" "gcc" "src/alloc/CMakeFiles/corm_alloc.dir/block.cc.o.d"
  "/root/repo/src/alloc/block_allocator.cc" "src/alloc/CMakeFiles/corm_alloc.dir/block_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/corm_alloc.dir/block_allocator.cc.o.d"
  "/root/repo/src/alloc/fragmentation.cc" "src/alloc/CMakeFiles/corm_alloc.dir/fragmentation.cc.o" "gcc" "src/alloc/CMakeFiles/corm_alloc.dir/fragmentation.cc.o.d"
  "/root/repo/src/alloc/size_classes.cc" "src/alloc/CMakeFiles/corm_alloc.dir/size_classes.cc.o" "gcc" "src/alloc/CMakeFiles/corm_alloc.dir/size_classes.cc.o.d"
  "/root/repo/src/alloc/thread_allocator.cc" "src/alloc/CMakeFiles/corm_alloc.dir/thread_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/corm_alloc.dir/thread_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/corm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/corm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
