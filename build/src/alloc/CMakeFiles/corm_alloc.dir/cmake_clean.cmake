file(REMOVE_RECURSE
  "CMakeFiles/corm_alloc.dir/block.cc.o"
  "CMakeFiles/corm_alloc.dir/block.cc.o.d"
  "CMakeFiles/corm_alloc.dir/block_allocator.cc.o"
  "CMakeFiles/corm_alloc.dir/block_allocator.cc.o.d"
  "CMakeFiles/corm_alloc.dir/fragmentation.cc.o"
  "CMakeFiles/corm_alloc.dir/fragmentation.cc.o.d"
  "CMakeFiles/corm_alloc.dir/size_classes.cc.o"
  "CMakeFiles/corm_alloc.dir/size_classes.cc.o.d"
  "CMakeFiles/corm_alloc.dir/thread_allocator.cc.o"
  "CMakeFiles/corm_alloc.dir/thread_allocator.cc.o.d"
  "libcorm_alloc.a"
  "libcorm_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
