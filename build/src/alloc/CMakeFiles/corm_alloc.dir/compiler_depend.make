# Empty compiler generated dependencies file for corm_alloc.
# This may be replaced when dependencies are built.
