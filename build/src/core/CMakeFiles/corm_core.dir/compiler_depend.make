# Empty compiler generated dependencies file for corm_core.
# This may be replaced when dependencies are built.
