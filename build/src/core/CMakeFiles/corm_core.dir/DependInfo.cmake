
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/corm_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/corm_core.dir/client.cc.o.d"
  "/root/repo/src/core/compaction.cc" "src/core/CMakeFiles/corm_core.dir/compaction.cc.o" "gcc" "src/core/CMakeFiles/corm_core.dir/compaction.cc.o.d"
  "/root/repo/src/core/corm_node.cc" "src/core/CMakeFiles/corm_core.dir/corm_node.cc.o" "gcc" "src/core/CMakeFiles/corm_core.dir/corm_node.cc.o.d"
  "/root/repo/src/core/object_layout.cc" "src/core/CMakeFiles/corm_core.dir/object_layout.cc.o" "gcc" "src/core/CMakeFiles/corm_core.dir/object_layout.cc.o.d"
  "/root/repo/src/core/probability.cc" "src/core/CMakeFiles/corm_core.dir/probability.cc.o" "gcc" "src/core/CMakeFiles/corm_core.dir/probability.cc.o.d"
  "/root/repo/src/core/worker.cc" "src/core/CMakeFiles/corm_core.dir/worker.cc.o" "gcc" "src/core/CMakeFiles/corm_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/corm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/corm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/corm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
