file(REMOVE_RECURSE
  "CMakeFiles/corm_core.dir/client.cc.o"
  "CMakeFiles/corm_core.dir/client.cc.o.d"
  "CMakeFiles/corm_core.dir/compaction.cc.o"
  "CMakeFiles/corm_core.dir/compaction.cc.o.d"
  "CMakeFiles/corm_core.dir/corm_node.cc.o"
  "CMakeFiles/corm_core.dir/corm_node.cc.o.d"
  "CMakeFiles/corm_core.dir/object_layout.cc.o"
  "CMakeFiles/corm_core.dir/object_layout.cc.o.d"
  "CMakeFiles/corm_core.dir/probability.cc.o"
  "CMakeFiles/corm_core.dir/probability.cc.o.d"
  "CMakeFiles/corm_core.dir/worker.cc.o"
  "CMakeFiles/corm_core.dir/worker.cc.o.d"
  "libcorm_core.a"
  "libcorm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
