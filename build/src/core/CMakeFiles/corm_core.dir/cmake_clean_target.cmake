file(REMOVE_RECURSE
  "libcorm_core.a"
)
