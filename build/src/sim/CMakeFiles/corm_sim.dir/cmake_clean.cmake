file(REMOVE_RECURSE
  "CMakeFiles/corm_sim.dir/address_space.cc.o"
  "CMakeFiles/corm_sim.dir/address_space.cc.o.d"
  "CMakeFiles/corm_sim.dir/latency_model.cc.o"
  "CMakeFiles/corm_sim.dir/latency_model.cc.o.d"
  "CMakeFiles/corm_sim.dir/mem_file.cc.o"
  "CMakeFiles/corm_sim.dir/mem_file.cc.o.d"
  "CMakeFiles/corm_sim.dir/physical_memory.cc.o"
  "CMakeFiles/corm_sim.dir/physical_memory.cc.o.d"
  "libcorm_sim.a"
  "libcorm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
