# Empty compiler generated dependencies file for corm_sim.
# This may be replaced when dependencies are built.
