file(REMOVE_RECURSE
  "libcorm_sim.a"
)
