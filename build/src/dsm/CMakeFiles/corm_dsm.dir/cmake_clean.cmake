file(REMOVE_RECURSE
  "CMakeFiles/corm_dsm.dir/cluster.cc.o"
  "CMakeFiles/corm_dsm.dir/cluster.cc.o.d"
  "CMakeFiles/corm_dsm.dir/dsm_context.cc.o"
  "CMakeFiles/corm_dsm.dir/dsm_context.cc.o.d"
  "CMakeFiles/corm_dsm.dir/migration.cc.o"
  "CMakeFiles/corm_dsm.dir/migration.cc.o.d"
  "CMakeFiles/corm_dsm.dir/replication.cc.o"
  "CMakeFiles/corm_dsm.dir/replication.cc.o.d"
  "libcorm_dsm.a"
  "libcorm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
