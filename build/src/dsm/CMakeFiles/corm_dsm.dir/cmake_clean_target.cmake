file(REMOVE_RECURSE
  "libcorm_dsm.a"
)
