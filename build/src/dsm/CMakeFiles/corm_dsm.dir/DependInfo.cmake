
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/cluster.cc" "src/dsm/CMakeFiles/corm_dsm.dir/cluster.cc.o" "gcc" "src/dsm/CMakeFiles/corm_dsm.dir/cluster.cc.o.d"
  "/root/repo/src/dsm/dsm_context.cc" "src/dsm/CMakeFiles/corm_dsm.dir/dsm_context.cc.o" "gcc" "src/dsm/CMakeFiles/corm_dsm.dir/dsm_context.cc.o.d"
  "/root/repo/src/dsm/migration.cc" "src/dsm/CMakeFiles/corm_dsm.dir/migration.cc.o" "gcc" "src/dsm/CMakeFiles/corm_dsm.dir/migration.cc.o.d"
  "/root/repo/src/dsm/replication.cc" "src/dsm/CMakeFiles/corm_dsm.dir/replication.cc.o" "gcc" "src/dsm/CMakeFiles/corm_dsm.dir/replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/corm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/corm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/corm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/corm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/corm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
