# Empty compiler generated dependencies file for corm_dsm.
# This may be replaced when dependencies are built.
