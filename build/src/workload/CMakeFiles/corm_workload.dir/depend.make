# Empty dependencies file for corm_workload.
# This may be replaced when dependencies are built.
