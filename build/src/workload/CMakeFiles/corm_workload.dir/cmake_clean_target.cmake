file(REMOVE_RECURSE
  "libcorm_workload.a"
)
