file(REMOVE_RECURSE
  "CMakeFiles/corm_workload.dir/redis_trace.cc.o"
  "CMakeFiles/corm_workload.dir/redis_trace.cc.o.d"
  "CMakeFiles/corm_workload.dir/synthetic_trace.cc.o"
  "CMakeFiles/corm_workload.dir/synthetic_trace.cc.o.d"
  "CMakeFiles/corm_workload.dir/trace_io.cc.o"
  "CMakeFiles/corm_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/corm_workload.dir/trace_runner.cc.o"
  "CMakeFiles/corm_workload.dir/trace_runner.cc.o.d"
  "libcorm_workload.a"
  "libcorm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
