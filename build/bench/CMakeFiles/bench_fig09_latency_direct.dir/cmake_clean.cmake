file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_latency_direct.dir/bench_fig09_latency_direct.cc.o"
  "CMakeFiles/bench_fig09_latency_direct.dir/bench_fig09_latency_direct.cc.o.d"
  "bench_fig09_latency_direct"
  "bench_fig09_latency_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_latency_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
