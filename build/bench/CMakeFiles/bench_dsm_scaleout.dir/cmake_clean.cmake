file(REMOVE_RECURSE
  "CMakeFiles/bench_dsm_scaleout.dir/bench_dsm_scaleout.cc.o"
  "CMakeFiles/bench_dsm_scaleout.dir/bench_dsm_scaleout.cc.o.d"
  "bench_dsm_scaleout"
  "bench_dsm_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsm_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
