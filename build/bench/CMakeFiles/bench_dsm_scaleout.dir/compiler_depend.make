# Empty compiler generated dependencies file for bench_dsm_scaleout.
# This may be replaced when dependencies are built.
