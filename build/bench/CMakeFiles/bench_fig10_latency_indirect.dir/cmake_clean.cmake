file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_latency_indirect.dir/bench_fig10_latency_indirect.cc.o"
  "CMakeFiles/bench_fig10_latency_indirect.dir/bench_fig10_latency_indirect.cc.o.d"
  "bench_fig10_latency_indirect"
  "bench_fig10_latency_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_latency_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
