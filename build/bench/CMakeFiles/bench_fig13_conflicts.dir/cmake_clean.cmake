file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_conflicts.dir/bench_fig13_conflicts.cc.o"
  "CMakeFiles/bench_fig13_conflicts.dir/bench_fig13_conflicts.cc.o.d"
  "bench_fig13_conflicts"
  "bench_fig13_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
