# Empty dependencies file for bench_fig08_remap.
# This may be replaced when dependencies are built.
