file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_remap.dir/bench_fig08_remap.cc.o"
  "CMakeFiles/bench_fig08_remap.dir/bench_fig08_remap.cc.o.d"
  "bench_fig08_remap"
  "bench_fig08_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
