# Empty dependencies file for bench_fig07_probability.
# This may be replaced when dependencies are built.
