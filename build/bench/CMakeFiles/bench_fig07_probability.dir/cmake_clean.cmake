file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_probability.dir/bench_fig07_probability.cc.o"
  "CMakeFiles/bench_fig07_probability.dir/bench_fig07_probability.cc.o.d"
  "bench_fig07_probability"
  "bench_fig07_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
