file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_redis_vanilla.dir/bench_fig18_redis_vanilla.cc.o"
  "CMakeFiles/bench_fig18_redis_vanilla.dir/bench_fig18_redis_vanilla.cc.o.d"
  "bench_fig18_redis_vanilla"
  "bench_fig18_redis_vanilla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_redis_vanilla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
