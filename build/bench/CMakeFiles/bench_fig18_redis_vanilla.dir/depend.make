# Empty dependencies file for bench_fig18_redis_vanilla.
# This may be replaced when dependencies are built.
