# Empty dependencies file for bench_fig19_redis_hybrid.
# This may be replaced when dependencies are built.
