file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_redis_hybrid.dir/bench_fig19_redis_hybrid.cc.o"
  "CMakeFiles/bench_fig19_redis_hybrid.dir/bench_fig19_redis_hybrid.cc.o.d"
  "bench_fig19_redis_hybrid"
  "bench_fig19_redis_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_redis_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
