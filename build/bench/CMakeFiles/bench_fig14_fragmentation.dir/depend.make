# Empty dependencies file for bench_fig14_fragmentation.
# This may be replaced when dependencies are built.
