#!/usr/bin/env bash
# Project lint gate. Exits non-zero on any violation.
#
# Rules (grep-based, always enforced):
#   1. No raw `new`/`delete` in src/ — ownership is RAII-only. Exemption:
#      a `NOLINT(corm-raw-new)` comment on the line or the line above
#      (private-constructor factories that make_unique cannot reach).
#   2. No std::mutex in src/alloc/ or src/core/ — the data plane uses the
#      ranked SpinLock / RankedSharedMutex primitives (common/lock_rank.h)
#      so the debug deadlock checker sees every acquisition. The simulated
#      substrate (src/sim/, src/rdma/) models kernel/NIC state and may keep
#      std::mutex.
#   3. Status / Result<T> must stay [[nodiscard]] (call-site enforcement is
#      then free via -Wall).
#   4. src/ must not include tests/ headers (no inverted layering).
#   5. No unbounded spin-waits on atomics outside src/common/ and
#      src/rdma/ — every completion wait must be deadline-bounded
#      (common/retry.h) so a dead node converts to kTimeout instead of a
#      hang. Exemption: `NOLINT(corm-spin-wait)` on the line or the line
#      above (service run-loops bounded by stop flags, and waits on local
#      workers that provably cannot die independently).
#   6. Every analysis escape in src/ — a `NOLINT(corm-*)` marker or a
#      `NO_THREAD_SAFETY_ANALYSIS` attribute — must carry a written
#      rationale: a `//` comment (beyond the escape token itself) on the
#      same line or the preceding line. Escapes are debts; undocumented
#      debts are violations. The macro definition itself
#      (src/common/thread_annotations.h) is exempt.
#   7. No heap allocation in hot-path files: a file whose first line is
#      `// corm-hotpath` declares the steady-state data-plane contract
#      (DESIGN.md §7) — no `new`, `make_unique`/`make_shared`, or
#      `malloc`-family call may appear in it. Exemption: a
#      `NOLINT(corm-hotpath-alloc)` (cold-path allocation living in a hot
#      file: construction, growth, pool refill) or `NOLINT(corm-raw-new)`
#      comment on the line or the line above.
#   8. src/core/compaction_engine.cc (the sliced engine's phase handlers)
#      may contain no unbounded waits whatsoever — no atomic spin-waits, no
#      sleeps — and, unlike rule 5, no NOLINT escape is honored. Phase
#      handlers poll and return, or bound their loops with a Deadline.
#
# Rules 1, 5, and 7 have a precise implementation in tools/corm_tidy (a
# token/AST-level linter that also adds corm-escape-rationale and
# corm-remap-hazard). When a built corm-tidy binary is found — via
# $CORM_TIDY_BIN or under build*/tools/corm_tidy/ — those rules delegate
# to it and the grep versions below stay dormant. `--fallback-only`
# forces the grep path (used by CI to keep the fallback from rotting).
#
# Additionally runs clang-tidy over src/ when a binary and a compilation
# database are available; skipped (with a note) otherwise, since the CI
# lint job provides clang-tidy.
set -u
cd "$(dirname "$0")/.."

fallback_only=0
for arg in "$@"; do
  case "$arg" in
    --fallback-only) fallback_only=1 ;;
    *) printf 'usage: tools/lint.sh [--fallback-only]\n' >&2; exit 2 ;;
  esac
done

fail=0
note() { printf '%s\n' "$*"; }
violation() { printf 'lint: %s\n' "$*" >&2; fail=1; }

# Locate a built corm-tidy: explicit override first, then build trees.
corm_tidy="${CORM_TIDY_BIN:-}"
if [ -z "$corm_tidy" ]; then
  for cand in build build-clang build-asan build-tsan build-rel; do
    if [ -x "$cand/tools/corm_tidy/corm-tidy" ]; then
      corm_tidy="$cand/tools/corm_tidy/corm-tidy"
      break
    fi
  done
fi
use_tidy=0
if [ "$fallback_only" -eq 0 ] && [ -n "$corm_tidy" ] && [ -x "$corm_tidy" ]; then
  use_tidy=1
fi

# A corm-tidy binary older than any of its sources silently lints with
# yesterday's rules — the worst failure mode for a gate. Fail fast with the
# rebuild recipe instead of delegating to a stale analysis.
if [ "$use_tidy" -eq 1 ]; then
  stale=$(find tools/corm_tidy -name '*.h' -o -name '*.cc' -o -name 'CMakeLists.txt' \
              | xargs -I{} find {} -newer "$corm_tidy" 2>/dev/null | head -1)
  if [ -n "$stale" ]; then
    violation "corm-tidy binary $corm_tidy is older than $stale; rebuild it (cmake --build ${corm_tidy%%/tools/*} --target corm-tidy) or set CORM_TIDY_BIN"
    note 'lint: FAILED'
    exit 1
  fi
fi

src_files=$(find src -name '*.h' -o -name '*.cc' | sort)

# --- corm-tidy delegation (rules 1, 5, 7 + escape-rationale, remap-hazard,
# --- strict rule 8). --------------------------------------------------------
if [ "$use_tidy" -eq 1 ]; then
  note "lint: delegating rules 1/5/7 to corm-tidy ($corm_tidy)"
  if ! "$corm_tidy" --src src; then
    violation 'corm-tidy reported diagnostics (see above)'
  fi
fi

# --- Rule 1: raw new/delete in src/. ---------------------------------------
# Comment- and string-aware scanner (awk): block comments and string
# literals are stripped with a real state machine before matching, so
# `/* new Foo() */` and "delete p" in a literal never fire; plain
# placement-new `new (buf) T` is skipped but allocating nothrow-new
# `new (std::nothrow) T` is caught; a `delete[]` whose operand wrapped to
# the next line is caught via carried state. corm-tidy does this at the
# token level — this is the no-binary fallback.
rule1_scan() {
  awk '
    function strip(line,    out, i, n, c, c2, p) {
      out = ""; i = 1; n = length(line)
      while (i <= n) {
        if (inblock) {
          p = index(substr(line, i), "*/")
          if (p == 0) return out
          i += p + 1; inblock = 0; continue
        }
        c = substr(line, i, 1); c2 = substr(line, i, 2)
        if (c2 == "//") return out
        if (c2 == "/*") { inblock = 1; i += 2; continue }
        if (c == "\"" || c == "\x27") {
          q = c; i++
          while (i <= n) {
            if (substr(line, i, 1) == "\\") { i += 2; continue }
            if (substr(line, i, 1) == q) { i++; break }
            i++
          }
          out = out " "; continue
        }
        out = out c; i++
      }
      return out
    }
    {
      s = strip($0)
      if (s ~ /^[ \t]*#/) { pending = 0; next }
      # Declarations and deleted members are not allocation sites.
      gsub(/operator[ \t]*new[ \t]*\[?[ \t]*\]?/, " ", s)
      gsub(/operator[ \t]*delete[ \t]*\[?[ \t]*\]?/, " ", s)
      gsub(/=[ \t]*delete/, " ", s)
      if (pending && s ~ /^[ \t]*[A-Za-z_*(]/) print pending_line
      pending = 0
      hit = 0
      # Allocating new: `new Type(...)` / `new Type[...]` / `new Type{...}`
      # (a `(` directly after `new` is placement and stays silent) ...
      if (s ~ /(^|[^A-Za-z0-9_])new[ \t]+[A-Za-z_:][A-Za-z0-9_:<>, \t]*[({[]/) hit = 1
      # ... except nothrow placement, which does allocate.
      if (s ~ /(^|[^A-Za-z0-9_])new[ \t]*\([ \t]*(std[ \t]*::[ \t]*)?nothrow/) hit = 1
      # delete / delete[] with the operand on the same line.
      if (s ~ /(^|[^A-Za-z0-9_])delete[ \t]*(\[[ \t]*\])?[ \t]*[A-Za-z_*(]/) hit = 1
      if (hit) { print NR }
      else if (s ~ /(^|[^A-Za-z0-9_])delete[ \t]*(\[[ \t]*\])?[ \t]*$/) {
        pending = 1; pending_line = NR
      }
    }
  ' "$1" | sort -un
}
if [ "$use_tidy" -eq 0 ]; then
  for f in $src_files; do
    linenos=$(rule1_scan "$f")
    [ -z "$linenos" ] && continue
    for lineno in $linenos; do
      # Exemption: NOLINT(corm-raw-new) on this or the preceding line.
      if sed -n "$((lineno > 1 ? lineno - 1 : 1)),${lineno}p" "$f" \
          | grep -q 'NOLINT(corm-raw-new)'; then
        continue
      fi
      violation "$f:$lineno:$(sed -n "${lineno}p" "$f") — raw new/delete in src/ (rule 1)"
    done
  done
fi

# --- Rule 2: std::mutex in the data plane. ---------------------------------
for f in $(find src/alloc src/core -name '*.h' -o -name '*.cc' | sort); do
  matches=$(grep -n 'std::mutex\|std::shared_mutex\|std::recursive_mutex' "$f" \
      | grep -v '^\s*[0-9]*:\s*//' || true)
  [ -z "$matches" ] && continue
  while IFS= read -r line; do
    violation "$f:$line — std::mutex in the data plane; use the ranked locks from common/lock_rank.h (rule 2)"
  done <<EOF_MATCHES
$matches
EOF_MATCHES
done

# --- Rule 3: Status / Result stay [[nodiscard]]. ---------------------------
grep -q 'class \[\[nodiscard\]\] Status' src/common/status.h ||
  violation 'src/common/status.h — Status lost its [[nodiscard]] (rule 3)'
grep -q 'class \[\[nodiscard\]\] Result' src/common/result.h ||
  violation 'src/common/result.h — Result lost its [[nodiscard]] (rule 3)'

# --- Rule 4: src/ must not include tests/. ---------------------------------
for f in $src_files; do
  matches=$(grep -n '#include ["<]tests/' "$f" || true)
  [ -z "$matches" ] && continue
  while IFS= read -r line; do
    violation "$f:$line — src/ includes a tests/ header (rule 4)"
  done <<EOF_MATCHES
$matches
EOF_MATCHES
done

# --- Rule 5: unbounded atomic spin-waits outside common/ and rdma/. --------
# A `while (...load(...))` loop with no deadline is exactly the bug the
# RPC transport had: a remote death turns it into a hang. The low-level
# primitives (common/, rdma/) own the sanctioned bounded waits.
if [ "$use_tidy" -eq 0 ]; then
  for f in $(find src -name '*.h' -o -name '*.cc' \
                 | grep -v '^src/common/' | grep -v '^src/rdma/' | sort); do
    matches=$(grep -nE 'while[[:space:]]*\(.*(\.|->)load\(' "$f" \
        | grep -vE '^\s*[0-9]+:\s*(//|\*)' || true)
    [ -z "$matches" ] && continue
    while IFS= read -r line; do
      lineno=${line%%:*}
      if sed -n "$((lineno > 1 ? lineno - 1 : 1)),${lineno}p" "$f" \
          | grep -q 'NOLINT(corm-spin-wait)'; then
        continue
      fi
      violation "$f:$line — unbounded spin-wait on an atomic; bound it with a Deadline (common/retry.h) or annotate NOLINT(corm-spin-wait) (rule 5)"
    done <<EOF_MATCHES
$matches
EOF_MATCHES
  done
fi

# --- Rule 6: every analysis escape carries a written rationale. ------------
# An escape (NOLINT(corm-*) or NO_THREAD_SAFETY_ANALYSIS) silences a checker;
# the why must live next to it. Accept: after deleting the escape tokens
# themselves from the match line and the preceding line, a `//` comment with
# real words (>= 3 consecutive letters) must remain in that window.
for f in $src_files; do
  [ "$f" = "src/common/thread_annotations.h" ] && continue
  matches=$(grep -nE 'NOLINT\(corm-|NO_THREAD_SAFETY_ANALYSIS' "$f" || true)
  [ -z "$matches" ] && continue
  while IFS= read -r line; do
    lineno=${line%%:*}
    window=$(sed -n "$((lineno > 1 ? lineno - 1 : 1)),${lineno}p" "$f" \
        | sed -E 's/NOLINT\(corm-[a-z-]+\)//g; s/NO_THREAD_SAFETY_ANALYSIS//g')
    if ! printf '%s\n' "$window" | grep -qE '//.*[[:alpha:]]{3,}'; then
      violation "$f:$line — escape without a rationale comment on the same or preceding line (rule 6)"
    fi
  done <<EOF_MATCHES
$matches
EOF_MATCHES
done

# --- Rule 7: no allocation in `// corm-hotpath` files. ---------------------
# The steady-state data plane must not allocate; a marked file promising
# that gets every allocating expression flagged unless explicitly exempted
# as cold-path.
if [ "$use_tidy" -eq 0 ]; then
  for f in $src_files; do
    # Exact-line marker: a first line merely *starting* with the marker
    # text (e.g. a prose comment) does not opt a file in.
    head -1 "$f" | grep -qE '^// corm-hotpath[[:space:]]*$' || continue
    matches=$(grep -nE '(^|[^_[:alnum:]"])(new[[:space:]]+[[:alnum:]_:<]+[[:space:]]*[({[]|std::make_unique|std::make_shared|(^|[^_[:alnum:]])(malloc|calloc|realloc)[[:space:]]*\()' "$f" \
        | grep -vE '^\s*[0-9]+:\s*(//|\*)' || true)
    [ -z "$matches" ] && continue
    while IFS= read -r line; do
      lineno=${line%%:*}
      if sed -n "$((lineno > 1 ? lineno - 1 : 1)),${lineno}p" "$f" \
          | grep -qE 'NOLINT\(corm-hotpath-alloc\)|NOLINT\(corm-raw-new\)'; then
        continue
      fi
      violation "$f:$line — heap allocation in a corm-hotpath file; move it off the data plane or annotate NOLINT(corm-hotpath-alloc) with a rationale (rule 7)"
    done <<EOF_MATCHES
$matches
EOF_MATCHES
  done
fi

# --- Rule 8: compaction phase handlers carry no unbounded waits. -----------
# The sliced engine's contract (DESIGN.md §9) is that every phase handler
# returns to the leader's RPC loop in bounded time: no spin-wait on an
# atomic, no sleeps, and — unlike rule 5 — no NOLINT escape hatch at all.
# Waits must be non-blocking polls re-entered on the next slice or
# Deadline-bounded loops (common/retry.h) that abort the run with kTimeout.
engine_file=src/core/compaction_engine.cc
if [ -f "$engine_file" ]; then
  matches=$(grep -nE 'while[[:space:]]*\(.*(\.|->)load\(|sleep_for|NOLINT\(corm-spin-wait\)' "$engine_file" \
      | grep -vE '^\s*[0-9]+:\s*(//|\*)' || true)
  if [ -n "$matches" ]; then
    while IFS= read -r line; do
      violation "$engine_file:$line — unbounded wait in a compaction phase handler; poll and re-enter on the next slice, or bound it with a Deadline (rule 8)"
    done <<EOF_MATCHES
$matches
EOF_MATCHES
  fi
else
  violation "$engine_file missing — rule 8 has no target"
fi

# --- clang-tidy (optional locally; required in CI). ------------------------
tidy_bin=$(command -v clang-tidy || true)
if [ -n "$tidy_bin" ]; then
  db=""
  for cand in build build-clang build-asan build-tsan; do
    [ -f "$cand/compile_commands.json" ] && db=$cand && break
  done
  if [ -n "$db" ]; then
    note "lint: running clang-tidy with compile database $db/"
    cc_files=$(find src -name '*.cc' | sort)
    if ! "$tidy_bin" -p "$db" --quiet $cc_files; then
      violation 'clang-tidy reported errors'
    fi
  else
    note 'lint: clang-tidy found but no compile_commands.json (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); skipping tidy pass'
  fi
else
  note 'lint: clang-tidy not installed; grep rules only (CI runs the tidy pass)'
fi

if [ "$fail" -ne 0 ]; then
  note 'lint: FAILED'
  exit 1
fi
note 'lint: OK'
