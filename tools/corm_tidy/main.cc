// corm-tidy: CoRM's project linter (DESIGN.md §10).
//
// Promotes the historical grep rules (tools/lint.sh rules 1/5/6/7/8) to
// semantic checks and adds the CoRM-specific corm-remap-hazard analysis no
// grep can express. Two engines:
//
//   ast     Clang LibTooling over compile_commands.json (-p <builddir>);
//           type-aware allocation checks, sight through macros. Built only
//           when the Clang dev package is present at configure time.
//   token   a comment/string-aware C++ token scanner; needs nothing but
//           the source files. Always built; the engines share NOLINT
//           handling so suppressions mean the same thing everywhere.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage/environment error.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ast_engine.h"
#include "audits.h"
#include "call_graph.h"
#include "lock_order.h"
#include "remap_hazard.h"
#include "source_file.h"
#include "token_checks.h"
#include "wire_abi.h"

namespace corm_tidy {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::vector<std::string> files;     // explicit files
  std::vector<std::string> src_dirs;  // --src (recursive *.h/*.cc)
  std::string build_dir;              // -p (compilation database)
  std::set<std::string> checks;       // empty = all
  std::string audit_root = ".";       // --root, for --audit
  bool fallback_only = false;
  bool list_checks = false;
  bool list_hotpath = false;
  bool print_engine = false;
  bool quiet = false;
  bool no_interproc = false;          // PR-6 per-function analysis only
  bool audit = false;                 // project contract audits, then exit
  bool wire_abi = false;              // print wire-ABI JSON, then exit
  bool dump_lock_graph = false;       // print lock-order graph, then exit
};

int Usage(std::ostream& os, int code) {
  os << "usage: corm-tidy [options] [files...]\n"
        "  -p <dir>          compilation database directory (enables the\n"
        "                    AST engine when this binary was built with it)\n"
        "  --src <dir>       lint every *.h/*.cc under <dir> (default:\n"
        "                    src/ when no files are given); repeatable\n"
        "  --checks=a,b      run only the named checks\n"
        "  --fallback-only   force the token engine even when the AST\n"
        "                    engine is available (tests both lint paths)\n"
        "  --list-checks     print the check catalog and exit\n"
        "  --list-hotpath    print files carrying the `// corm-hotpath`\n"
        "                    contract marker and exit\n"
        "  --engine          print the engine that would run (ast|token)\n"
        "  --no-interproc    disable the whole-program call-graph analysis\n"
        "                    (per-function checks only, as before v2)\n"
        "  --audit           run the project contract audits (fault sites,\n"
        "                    sharded counters) against --root and exit\n"
        "  --root <dir>      repo root for --audit (default: .)\n"
        "  --wire-abi        print the wire-ABI layout JSON for the loaded\n"
        "                    files and exit (diffed against the committed\n"
        "                    tools/corm_tidy/wire_abi.json golden in CI)\n"
        "  --dump-lock-graph print the static lock-order graph (ranks and\n"
        "                    held->acquired edges) and exit\n"
        "  -q, --quiet       no summary line\n";
  return code;
}

bool ParseArgs(int argc, char** argv, Options* opt, std::string* err) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-p") {
      if (++i == argc) {
        *err = "-p needs a directory";
        return false;
      }
      opt->build_dir = argv[i];
    } else if (a == "--src") {
      if (++i == argc) {
        *err = "--src needs a directory";
        return false;
      }
      opt->src_dirs.push_back(argv[i]);
    } else if (a.rfind("--checks=", 0) == 0) {
      std::stringstream ss(a.substr(9));
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (!id.empty()) opt->checks.insert(id);
      }
    } else if (a == "--fallback-only") {
      opt->fallback_only = true;
    } else if (a == "--no-interproc") {
      opt->no_interproc = true;
    } else if (a == "--audit") {
      opt->audit = true;
    } else if (a == "--root") {
      if (++i == argc) {
        *err = "--root needs a directory";
        return false;
      }
      opt->audit_root = argv[i];
    } else if (a == "--wire-abi") {
      opt->wire_abi = true;
    } else if (a == "--dump-lock-graph") {
      opt->dump_lock_graph = true;
    } else if (a == "--list-checks") {
      opt->list_checks = true;
    } else if (a == "--list-hotpath") {
      opt->list_hotpath = true;
    } else if (a == "--engine") {
      opt->print_engine = true;
    } else if (a == "-q" || a == "--quiet") {
      opt->quiet = true;
    } else if (a == "-h" || a == "--help") {
      *err = "";
      return false;
    } else if (!a.empty() && a[0] == '-') {
      *err = "unknown option " + a;
      return false;
    } else {
      opt->files.push_back(a);
    }
  }
  return true;
}

bool IsSourceExt(const fs::path& p) {
  return p.extension() == ".h" || p.extension() == ".cc";
}

// Resolves the file set: explicit files, plus recursive walks of --src
// dirs; defaults to src/ when nothing was named.
bool CollectFiles(Options* opt, std::vector<std::string>* out,
                  std::string* err) {
  std::vector<std::string> dirs = opt->src_dirs;
  if (opt->files.empty() && dirs.empty()) {
    if (!fs::is_directory("src")) {
      *err = "no files given and no src/ directory here; pass files or "
             "--src <dir>";
      return false;
    }
    dirs.push_back("src");
  }
  std::set<std::string> seen;
  for (const std::string& f : opt->files) {
    if (seen.insert(f).second) out->push_back(f);
  }
  for (const std::string& d : dirs) {
    if (!fs::is_directory(d)) {
      *err = "--src " + d + " is not a directory";
      return false;
    }
    std::vector<std::string> walked;
    for (const auto& entry : fs::recursive_directory_iterator(d)) {
      if (entry.is_regular_file() && IsSourceExt(entry.path())) {
        walked.push_back(entry.path().generic_string());
      }
    }
    std::sort(walked.begin(), walked.end());
    for (std::string& f : walked) {
      if (seen.insert(f).second) out->push_back(std::move(f));
    }
  }
  return true;
}

bool CheckEnabled(const Options& opt, const char* id) {
  return opt.checks.empty() || opt.checks.count(id) > 0;
}

}  // namespace

int Run(int argc, char** argv) {
  Options opt;
  std::string err;
  if (!ParseArgs(argc, argv, &opt, &err)) {
    if (err.empty()) return Usage(std::cout, 0);
    std::cerr << "corm-tidy: " << err << "\n";
    return Usage(std::cerr, 2);
  }
  for (const std::string& id : opt.checks) {
    const auto& catalog = CheckCatalog();
    if (std::none_of(catalog.begin(), catalog.end(),
                     [&](const CheckInfo& c) { return id == c.id; })) {
      std::cerr << "corm-tidy: unknown check '" << id
                << "' (see --list-checks)\n";
      return 2;
    }
  }

  if (opt.list_checks) {
    for (const CheckInfo& c : CheckCatalog()) {
      std::cout << c.id << "\n    " << c.summary << "\n";
    }
    return 0;
  }

  // The contract audits collect their own file sets (src/ AND tests/ —
  // "exercised by a test" needs the tests) and bypass the lint pipeline.
  if (opt.audit) return RunAudits(opt.audit_root, std::cout);

  const bool use_ast =
      AstEngineAvailable() && !opt.fallback_only && !opt.build_dir.empty();
  if (opt.print_engine) {
    std::cout << (use_ast ? "ast" : "token") << "\n";
    return 0;
  }

  std::vector<std::string> paths;
  if (!CollectFiles(&opt, &paths, &err)) {
    std::cerr << "corm-tidy: " << err << "\n";
    return 2;
  }

  std::vector<std::unique_ptr<SourceFile>> files;
  for (const std::string& p : paths) {
    auto f = std::make_unique<SourceFile>();
    if (!SourceFile::Load(p, f.get(), &err)) {
      std::cerr << "corm-tidy: " << err << "\n";
      return 2;
    }
    files.push_back(std::move(f));
  }

  if (opt.list_hotpath) {
    for (const auto& f : files) {
      if (f->is_hotpath()) std::cout << f->path() << "\n";
    }
    return 0;
  }

  std::vector<const SourceFile*> file_ptrs;
  for (const auto& f : files) file_ptrs.push_back(f.get());

  if (opt.wire_abi) {
    WireAbi abi;
    if (!ExtractWireAbi(file_ptrs, &abi, &err)) {
      std::cerr << "corm-tidy: --wire-abi: " << err << "\n";
      return 2;
    }
    PrintWireAbi(abi, std::cout);
    return 0;
  }

  std::vector<Diagnostic> diags;
  DiagSink sink{&diags};

  // Whole-program view: call graph + summaries (remap/lookup/revalidation
  // facts now, may-acquire rank sets deposited by the lock-order pass).
  // --no-interproc reproduces the per-function PR-6 analysis bit-for-bit,
  // which the fixture suite uses to prove the interprocedural catches are
  // new.
  std::unique_ptr<CallGraph> cg;
  if (!opt.no_interproc) {
    cg = std::make_unique<CallGraph>(CallGraph::Build(file_ptrs));
  }

  if (opt.dump_lock_graph) {
    std::vector<Diagnostic> scratch;
    DiagSink scratch_sink{&scratch};
    LockOrderAnalysis::Run(file_ptrs, cg.get(), &scratch_sink)
        .Dump(std::cout);
    return 0;
  }
  if (CheckEnabled(opt, kCheckLockRank)) {
    LockOrderAnalysis::Run(file_ptrs, cg.get(), &sink);
  }

  // Engine-independent checks: lexical by design, identical on every host.
  for (const auto& f : files) {
    if (CheckEnabled(opt, kCheckUnboundedWait)) CheckUnboundedWait(*f, &sink);
    if (CheckEnabled(opt, kCheckEscapeRationale)) {
      CheckEscapeRationale(*f, &sink);
    }
    if (CheckEnabled(opt, kCheckRemapHazard)) {
      CheckRemapHazard(*f, cg.get(), &sink);
    }
  }

  // Allocation checks: AST engine when available (type precision, macro
  // sight), token engine otherwise.
  const bool want_alloc_checks = CheckEnabled(opt, kCheckRawNew) ||
                                 CheckEnabled(opt, kCheckHotpathAlloc);
  if (use_ast && want_alloc_checks) {
    std::map<std::string, const SourceFile*> by_real;
    std::vector<std::string> cc_files;
    for (const auto& f : files) {
      std::error_code ec;
      const fs::path real = fs::canonical(f->path(), ec);
      if (!ec) by_real[real.generic_string()] = f.get();
      if (fs::path(f->path()).extension() == ".cc") {
        cc_files.push_back(f->path());
      }
    }
    if (!RunAstEngine(opt.build_dir, cc_files, by_real, &sink, &err)) {
      std::cerr << "corm-tidy: AST engine failed: " << err << "\n";
      return 2;
    }
    // Respect --checks for the AST results, and drop the per-TU duplicates
    // a shared header produces.
    diags.erase(std::remove_if(diags.begin(), diags.end(),
                               [&](const Diagnostic& d) {
                                 return !CheckEnabled(opt, d.check.c_str());
                               }),
                diags.end());
  } else if (want_alloc_checks) {
    for (const auto& f : files) {
      if (CheckEnabled(opt, kCheckRawNew)) CheckRawNew(*f, &sink);
      if (CheckEnabled(opt, kCheckHotpathAlloc)) CheckHotpathAlloc(*f, &sink);
    }
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.check, a.message) <
                     std::tie(b.file, b.line, b.col, b.check, b.message);
            });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.col == b.col && a.check == b.check;
                          }),
              diags.end());

  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ":" << d.col
              << ": warning: " << d.message << " [" << d.check << "]\n";
  }
  if (!opt.quiet) {
    std::cerr << "corm-tidy: " << diags.size() << " diagnostic(s), "
              << sink.suppressed << " suppressed, " << files.size()
              << " file(s) [" << (use_ast ? "ast" : "token") << " engine]\n";
  }
  return diags.empty() ? 0 : 1;
}

}  // namespace corm_tidy

int main(int argc, char** argv) { return corm_tidy::Run(argc, argv); }
