#include "remap_hazard.h"

#include <string>
#include <vector>

namespace corm_tidy {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

// Sanctioned revalidation idioms: a directory-epoch read, an explicit
// re-validate helper, or pinning the object against relocation.
bool IsRevalidationToken(const std::vector<Token>& toks, size_t i) {
  const Token& t = toks[i];
  if (t.kind != Token::Kind::kIdent) return false;
  if (t.text == "epoch" && i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
    return true;
  }
  if (t.text.find("Revalidate") != std::string::npos ||
      t.text.find("Validate") != std::string::npos) {
    return true;
  }
  if (t.text == "kCompacting" || t.text.rfind("Pin", 0) == 0) return true;
  return false;
}

struct TrackedVar {
  std::string name;
  int scope_depth = 0;   // depth the taint was established at
  int taint_line = 0;    // where the lookup happened
  bool hazardous = false;
  bool pinned = false;   // pinned against relocation; remap points skip it
  int remap_line = 0;    // remap point that made it hazardous
  std::string remap_callee;
};

}  // namespace

void CheckRemapHazard(const SourceFile& f, const CallGraph* cg,
                      DiagSink* sink) {
  // Strict set: inside src/index/ the check honors no NOLINT. The bucket
  // table is the one structure a remap can invalidate *while a remote
  // client is mid-probe*, so a suppressed hazard here silently breaks the
  // keyed lookup contract (DESIGN.md §13) — same footing as rule 8's
  // strict-wait files.
  const bool strict = f.path().find("src/index/") != std::string::npos;
  const auto& toks = f.tokens();
  std::vector<TrackedVar> vars;
  int depth = 0;

  // Summary-widened token classes (DESIGN.md §10.3). The textual root sets
  // are always honored; a CallGraph widens each class with the functions
  // whose summaries carry the corresponding interprocedural fact.
  auto summary = [&](const std::string& name) -> const FunctionSummary* {
    return cg == nullptr ? nullptr : cg->SummaryFor(name);
  };
  auto is_lookup = [&](const std::string& name) {
    if (CallGraph::IsLookupRootName(name)) return true;
    const FunctionSummary* s = summary(name);
    return s != nullptr && s->returns_lookup;
  };
  auto is_remap_point = [&](const std::string& name) {
    if (CallGraph::IsRemapRootName(name)) return true;
    const FunctionSummary* s = summary(name);
    return s != nullptr && s->advances_remap;
  };
  auto is_revalidating_call = [&](const std::string& name) {
    const FunctionSummary* s = summary(name);
    // A helper that both revalidates *and* advances remap must count as a
    // remap point, not a revalidation: the remap can land after the check.
    return s != nullptr && s->pins_or_validates && !s->advances_remap;
  };

  auto find_var = [&](const std::string& name) -> TrackedVar* {
    for (auto& v : vars) {
      if (v.name == name) return &v;
    }
    return nullptr;
  };

  // Statement spans: [start, end) where end indexes the `;`/`{`/`}` that
  // terminated it. Source order stands in for control flow — a linter's
  // trade, not a verifier's.
  size_t stmt_start = 0;
  for (size_t i = 0; i <= toks.size(); ++i) {
    const bool at_end = i == toks.size();
    if (!at_end && !IsPunct(toks[i], ";") && !IsPunct(toks[i], "{") &&
        !IsPunct(toks[i], "}")) {
      continue;
    }
    const size_t s = stmt_start;
    const size_t e = i;

    // (1) Revalidation anywhere in the statement clears standing hazards
    //     before use-detection: `if (dir.epoch() == e0) use(p);` is the
    //     sanctioned pattern and must not fire.
    bool revalidates = false;
    bool pins = false;
    for (size_t j = s; j < e; ++j) {
      if (!IsRevalidationToken(toks, j)) {
        // Interprocedural: a call to a pins-or-validates helper is a
        // revalidation (unless it may also advance remap; see above).
        if (toks[j].kind == Token::Kind::kIdent && j + 1 < toks.size() &&
            IsPunct(toks[j + 1], "(") && is_revalidating_call(toks[j].text)) {
          revalidates = true;
        }
        continue;
      }
      revalidates = true;
      const std::string& t = toks[j].text;
      pins = pins || t == "kCompacting" || t.rfind("Pin", 0) == 0;
    }
    if (revalidates) {
      for (auto& v : vars) v.hazardous = false;
      // Pinning named variables here (before a later remap point) holds the
      // object still — the kCompacting idiom — so they stay valid across it.
      if (pins) {
        for (size_t j = s; j < e; ++j) {
          if (toks[j].kind != Token::Kind::kIdent) continue;
          if (TrackedVar* v = find_var(toks[j].text)) v->pinned = true;
        }
      }
    }

    // Locate a top-level assignment `name = ...` (declaration initializer
    // or plain re-assignment; both re-establish the variable).
    size_t assign = e;  // index of `=`, e when none
    std::string target;
    {
      int paren = 0;
      for (size_t j = s; j < e; ++j) {
        if (IsPunct(toks[j], "(") || IsPunct(toks[j], "[")) ++paren;
        if (IsPunct(toks[j], ")") || IsPunct(toks[j], "]")) --paren;
        if (paren == 0 && IsPunct(toks[j], "=") && j > s &&
            toks[j - 1].kind == Token::Kind::kIdent) {
          // `a.b = ...` / `a->b = ...` assigns a member, not a tracked var.
          if (j >= 2 && (IsPunct(toks[j - 2], ".") || IsPunct(toks[j - 2], "->"))) {
            continue;
          }
          assign = j;
          target = toks[j - 1].text;
          break;
        }
      }
    }

    // (2) Uses of hazardous variables. The assignment target itself is not
    //     a use (writing a stale pointer away *is* flagged when read back).
    for (size_t j = s; j < e; ++j) {
      if (toks[j].kind != Token::Kind::kIdent) continue;
      if (assign < e && j == assign - 1) continue;  // the LHS target
      TrackedVar* v = find_var(toks[j].text);
      if (v == nullptr || !v->hazardous) continue;
      std::string msg =
          "`" + v->name + "` (from a block/object lookup, line " +
          std::to_string(v->taint_line) + ") is used after `" +
          v->remap_callee + "()` (line " + std::to_string(v->remap_line) +
          ") which may advance compaction and remap the block; "
          "re-lookup, validate the directory epoch, or pin the object "
          "(kCompacting) before reusing it";
      if (strict) {
        // No suppression window inside src/index/: append directly.
        sink->diags->push_back(
            {f.path(), toks[j].line, toks[j].col, kCheckRemapHazard,
             std::move(msg)});
      } else {
        sink->Report(f, kCheckRemapHazard, toks[j].line, toks[j].col,
                     std::move(msg));
      }
      v->hazardous = false;  // one diagnostic per stale region
    }

    // (3) Taint / clear through the assignment.
    if (assign < e) {
      bool rhs_taints = false;
      for (size_t j = assign + 1; j < e && !rhs_taints; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        if (is_lookup(toks[j].text) && j + 1 < toks.size() &&
            (IsPunct(toks[j + 1], "(") || IsPunct(toks[j + 1], "<"))) {
          rhs_taints = true;
        }
        // `x = entry.block` propagates taint (and freshness) from `entry`.
        if (toks[j].text == "block" && j >= 2 &&
            (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->")) &&
            find_var(toks[j - 2].text) != nullptr) {
          rhs_taints = true;
        }
      }
      if (rhs_taints) {
        if (TrackedVar* v = find_var(target)) {
          v->hazardous = false;  // freshly re-looked-up
          v->pinned = false;     // the new referent is not the pinned one
          v->taint_line = toks[assign].line;
          v->scope_depth = depth;
        } else {
          vars.push_back(
              {target, depth, toks[assign].line, false, false, 0, ""});
        }
      } else if (TrackedVar* v = find_var(target)) {
        // Reassigned from something that is not a lookup: stop tracking.
        vars.erase(vars.begin() + (v - vars.data()));
      }
    }

    // (4) Remap points poison every live tracked variable for the
    //     statements that follow.
    for (size_t j = s; j < e; ++j) {
      if (toks[j].kind == Token::Kind::kIdent &&
          is_remap_point(toks[j].text) && j + 1 < toks.size() &&
          IsPunct(toks[j + 1], "(")) {
        for (auto& v : vars) {
          if (!v.hazardous && !v.pinned) {
            // A remap point on the RHS of this statement's own assignment
            // does not poison the assigned variable: `p = ResolveObject(a)`
            // returns a *fresh* pointer even when ResolveObject may advance
            // remap internally before resolving.
            if (assign < e && v.name == target && j > assign) continue;
            v.hazardous = true;
            v.remap_line = toks[j].line;
            v.remap_callee = toks[j].text;
          }
        }
      }
    }

    // Scope bookkeeping.
    if (!at_end) {
      if (IsPunct(toks[i], "{")) {
        ++depth;
      } else if (IsPunct(toks[i], "}")) {
        for (size_t k = vars.size(); k-- > 0;) {
          if (vars[k].scope_depth >= depth) {
            vars.erase(vars.begin() + static_cast<long>(k));
          }
        }
        --depth;
      }
    }
    stmt_start = i + 1;
  }

  // The escape marker itself is banned in the strict set, mirroring the
  // rule-8 treatment of strict-wait files: a NOLINT that is never honored
  // only misleads the next reader.
  if (strict) {
    for (int line : f.NolintLines()) {
      if (f.NolintsOn(line).count(kCheckRemapHazard)) {
        sink->diags->push_back(
            {f.path(), line, 1, kCheckRemapHazard,
             "remap-hazard NOLINT marker inside src/index/; the strict set "
             "grants no escape here — restructure the access instead"});
      }
    }
  }
}

}  // namespace corm_tidy
