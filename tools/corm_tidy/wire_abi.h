// corm-tidy: wire-ABI extraction and pinning (`corm-tidy --wire-abi`).
//
// CoRM's correctness depends on byte-exact struct layouts that cross the
// (simulated) wire: GlobalAddr is memcpy'd into RPC payloads and handed to
// clients (paper Table 2), ReplRecordHeader / ReplObjectHeader are
// RDMA-written raw into replica ingress rings (DESIGN.md §11), and the
// packed object-header word is the unit of the seqlock protocol read
// one-sidedly by remote clients. The sources pin these with static_asserts;
// this extractor turns them into a reviewable artifact:
//
//   corm-tidy --wire-abi --src src   >  canonical JSON on stdout
//
// committed as tools/corm_tidy/wire_abi.json and diffed in CI. A layout
// change now shows up as a golden-file diff in the PR — an explicit,
// reviewed ABI break — rather than as a static_assert edit buried in the
// same commit that changed the struct.
//
// The layout computation is deliberately token-based with an explicit
// type-size table (standard fixed-width types plus the project aliases
// VAddr/RKey/LockState), NOT an AST/sizeof pass: the golden must be
// byte-identical on every host, including ones without libclang, and the
// wire structs use exactly the C layout rules the table encodes (verified
// against the sources' own sizeof static_asserts — a mismatch is a hard
// error, not a silent difference).

#ifndef CORM_TIDY_WIRE_ABI_H_
#define CORM_TIDY_WIRE_ABI_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "source_file.h"

namespace corm_tidy {

struct WireField {
  std::string name;
  std::string type;     // as spelled (last identifier of the type)
  uint32_t count = 1;   // array extent, 1 for scalars
  uint32_t offset = 0;
  uint32_t size = 0;    // total bytes (element size * count)
};

struct WireStruct {
  std::string name;
  std::string file;
  uint32_t size = 0;
  uint32_t align = 0;
  std::vector<WireField> fields;
};

struct WireAbi {
  std::vector<WireStruct> structs;       // sorted by name
  std::string header_probe_word;         // object header bit-layout pin,
                                         // canonical "0x..." form
};

// Extracts the wire structs (GlobalAddr, ReplRecordHeader,
// ReplObjectHeader) and the object-header probe word from the file set.
// Returns false with *err set when a root struct is missing, a field type
// is not in the size table, or a computed size contradicts the source's
// own `static_assert(sizeof(S) == N)`.
bool ExtractWireAbi(const std::vector<const SourceFile*>& files, WireAbi* out,
                    std::string* err);

// Canonical JSON form (stable key order, 2-space indent, trailing newline):
// the exact bytes committed to tools/corm_tidy/wire_abi.json.
void PrintWireAbi(const WireAbi& abi, std::ostream& os);

}  // namespace corm_tidy

#endif  // CORM_TIDY_WIRE_ABI_H_
