#include "ast_engine.h"

#if !CORM_TIDY_HAVE_CLANG

namespace corm_tidy {

bool AstEngineAvailable() { return false; }

bool RunAstEngine(const std::string&, const std::vector<std::string>&,
                  const std::map<std::string, const SourceFile*>&, DiagSink*,
                  std::string* err) {
  *err =
      "corm-tidy was built without the Clang development headers; the AST "
      "engine is unavailable (install llvm-dev + libclang-dev and "
      "reconfigure)";
  return false;
}

}  // namespace corm_tidy

#else  // CORM_TIDY_HAVE_CLANG

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/FileSystem.h"

namespace corm_tidy {
namespace {

struct AstContextShared {
  const std::map<std::string, const SourceFile*>* files = nullptr;
  DiagSink* sink = nullptr;
};

// Resolves an expansion location to (SourceFile, line, col); nullptr when
// the location is in a macro body, outside the linted file set, or invalid.
const SourceFile* ResolveLoc(const clang::SourceManager& sm,
                             clang::SourceLocation loc,
                             const AstContextShared& shared, int* line,
                             int* col) {
  if (loc.isInvalid()) return nullptr;
  // Diagnostics inside macro bodies would point at the macro definition,
  // not the offending use; the token engine skips preprocessor text for
  // the same reason. Spelling==expansion keeps only plain code.
  if (loc.isMacroID()) return nullptr;
  const clang::SourceLocation ex = sm.getExpansionLoc(loc);
  llvm::StringRef name = sm.getFilename(ex);
  if (name.empty()) return nullptr;
  llvm::SmallString<256> real;
  if (llvm::sys::fs::real_path(name, real)) return nullptr;
  auto it = shared.files->find(std::string(real.str()));
  if (it == shared.files->end()) return nullptr;
  *line = static_cast<int>(sm.getExpansionLineNumber(ex));
  *col = static_cast<int>(sm.getExpansionColumnNumber(ex));
  return it->second;
}

bool IsGrowthMethodName(llvm::StringRef name) {
  return name == "push_back" || name == "emplace_back" || name == "emplace" ||
         name == "push_front" || name == "emplace_front" ||
         name == "resize" || name == "reserve" || name == "append" ||
         name == "assign" || name == "insert";
}

class TidyVisitor : public clang::RecursiveASTVisitor<TidyVisitor> {
 public:
  TidyVisitor(const AstContextShared* shared, clang::ASTContext* ctx)
      : shared_(shared), sm_(&ctx->getSourceManager()) {}

  bool VisitCXXNewExpr(clang::CXXNewExpr* e) {
    // Placement new constructs in place and does not allocate — except the
    // nothrow form, whose "placement" argument selects the allocating
    // nothrow operator new.
    if (e->getNumPlacementArgs() > 0) {
      bool nothrow = false;
      for (unsigned i = 0; i < e->getNumPlacementArgs(); ++i) {
        if (e->getPlacementArg(i)->getType().getAsString().find("nothrow") !=
            std::string::npos) {
          nothrow = true;
        }
      }
      if (!nothrow) return true;
    }
    Report(e->getBeginLoc(), kCheckRawNew,
           "allocating `new` expression: ownership is RAII-only; use "
           "std::make_unique or a pool",
           /*also_hotpath=*/true,
           "explicit heap allocation (`new`) in a corm-hotpath file");
    return true;
  }

  bool VisitCXXDeleteExpr(clang::CXXDeleteExpr* e) {
    Report(e->getBeginLoc(), kCheckRawNew,
           "expression `delete`: ownership is RAII-only; return the pointer "
           "to its owning unique_ptr/pool instead",
           /*also_hotpath=*/true,
           "explicit deallocation (`delete`) in a corm-hotpath file");
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    const clang::FunctionDecl* fd = e->getDirectCallee();
    if (fd == nullptr || !fd->getDeclName().isIdentifier()) return true;
    const llvm::StringRef name = fd->getName();
    const bool alloc_call =
        name == "make_unique" || name == "make_shared" || name == "malloc" ||
        name == "calloc" || name == "realloc" || name == "strdup" ||
        name == "aligned_alloc";
    if (!alloc_call) return true;
    Report(e->getBeginLoc(), /*check=*/nullptr, "", /*also_hotpath=*/true,
           ("heap allocation (`" + name + "`) in a corm-hotpath file; move "
            "it off the data plane or annotate the cold path")
               .str());
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    const clang::CXXMethodDecl* md = e->getMethodDecl();
    const clang::CXXRecordDecl* rd = e->getRecordDecl();
    if (md == nullptr || rd == nullptr) return true;
    if (!md->getDeclName().isIdentifier() ||
        !IsGrowthMethodName(md->getName())) {
      return true;
    }
    // Type precision over the token engine: only receivers that actually
    // own heap storage count — std:: containers/strings, and the project's
    // own growable byte buffer.
    if (!rd->isInStdNamespace() && rd->getName() != "Buffer") return true;
    Report(e->getBeginLoc(), /*check=*/nullptr, "", /*also_hotpath=*/true,
           ("`" + md->getName() + "()` on " + rd->getNameAsString() +
            " may grow its heap storage (implicit allocation) in a "
            "corm-hotpath file")
               .str());
    return true;
  }

  bool VisitCXXConstructExpr(clang::CXXConstructExpr* e) {
    const clang::CXXConstructorDecl* cd = e->getConstructor();
    if (cd == nullptr) return true;
    const clang::CXXRecordDecl* rd = cd->getParent();
    if (rd == nullptr || !rd->isInStdNamespace() ||
        rd->getName() != "function") {
      return true;
    }
    Report(e->getBeginLoc(), /*check=*/nullptr, "", /*also_hotpath=*/true,
           "std::function construction in a corm-hotpath file: "
           "lambda-to-function conversion heap-allocates its capture state");
    return true;
  }

 private:
  // Reports `check` (when non-null) at `loc`, and additionally/instead the
  // hotpath-alloc check when the location's file carries the contract
  // marker. All reports flow through the shared NOLINT window.
  void Report(clang::SourceLocation loc, const char* check,
              const std::string& message, bool also_hotpath,
              const std::string& hotpath_message) {
    int line = 0;
    int col = 0;
    const SourceFile* f = ResolveLoc(*sm_, loc, *shared_, &line, &col);
    if (f == nullptr) return;
    if (check != nullptr) {
      shared_->sink->Report(*f, check, line, col, message);
    }
    if (also_hotpath && f->is_hotpath()) {
      shared_->sink->Report(*f, kCheckHotpathAlloc, line, col,
                            hotpath_message);
    }
  }

  const AstContextShared* shared_;
  const clang::SourceManager* sm_;
};

class TidyConsumer : public clang::ASTConsumer {
 public:
  explicit TidyConsumer(const AstContextShared* shared) : shared_(shared) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    TidyVisitor visitor(shared_, &ctx);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  const AstContextShared* shared_;
};

class TidyAction : public clang::ASTFrontendAction {
 public:
  explicit TidyAction(const AstContextShared* shared) : shared_(shared) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<TidyConsumer>(shared_);
  }

 private:
  const AstContextShared* shared_;
};

class TidyActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit TidyActionFactory(const AstContextShared* shared)
      : shared_(shared) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<TidyAction>(shared_);
  }

 private:
  const AstContextShared* shared_;
};

}  // namespace

bool AstEngineAvailable() { return true; }

bool RunAstEngine(const std::string& build_dir,
                  const std::vector<std::string>& cc_files,
                  const std::map<std::string, const SourceFile*>&
                      files_by_real_path,
                  DiagSink* sink, std::string* err) {
  std::string db_err;
  std::unique_ptr<clang::tooling::CompilationDatabase> db =
      clang::tooling::CompilationDatabase::autoDetectFromDirectory(build_dir,
                                                                   db_err);
  if (db == nullptr) {
    *err = "no compilation database under " + build_dir + ": " + db_err;
    return false;
  }
  AstContextShared shared;
  shared.files = &files_by_real_path;
  shared.sink = sink;

  clang::tooling::ClangTool tool(*db, cc_files);
  TidyActionFactory factory(&shared);
  if (tool.run(&factory) != 0) {
    *err = "clang tooling reported errors while parsing the tree";
    return false;
  }
  return true;
}

}  // namespace corm_tidy

#endif  // CORM_TIDY_HAVE_CLANG
