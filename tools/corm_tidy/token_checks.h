// corm-tidy: token-engine checks (the fallback that needs no compilation
// database). Each function appends unsuppressed diagnostics and counts
// suppressed ones; the remap-hazard check lives in remap_hazard.h.

#ifndef CORM_TIDY_TOKEN_CHECKS_H_
#define CORM_TIDY_TOKEN_CHECKS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "source_file.h"

namespace corm_tidy {

// Shared sink: routes a candidate diagnostic through the file's NOLINT
// suppression window and tallies the outcome.
struct DiagSink {
  std::vector<Diagnostic>* diags;
  size_t suppressed = 0;

  void Report(const SourceFile& f, const std::string& check, int line,
              int col, std::string message);
};

// True when `i` indexes an allocating `new` (not placement; nothrow-new is
// allocating) or an expression `delete`. Sets *is_delete accordingly.
// Exposed for the hotpath check, which reuses the same recognizer.
bool IsAllocatingNewOrDelete(const std::vector<Token>& toks, size_t i,
                             bool* is_delete);

// corm-raw-new: allocating new/delete expressions anywhere in the file.
void CheckRawNew(const SourceFile& f, DiagSink* sink);

// corm-hotpath-alloc: explicit and implicit allocations in `// corm-hotpath`
// files — new/make_unique/make_shared/malloc-family plus container growth
// calls (push_back, resize, append, ...) and std::function usage, which the
// grep rule could not see.
void CheckHotpathAlloc(const SourceFile& f, DiagSink* sink);

// corm-unbounded-wait: while-loops whose condition reads a std::atomic
// (`.load(` / `->load(`) with no Deadline and no stop-flag in the condition
// or body. In the strict-wait files — compaction_engine.cc, the
// replicated-log ship path (log_shipper.cc, replication.cc), and the remote
// sync schemes (src/sync/, cas_lock.cc) — the check is strict (rule 8):
// stop-flags don't count, sleeps are flagged, and NOLINT is not honored.
void CheckUnboundedWait(const SourceFile& f, DiagSink* sink);

// corm-escape-rationale: every NOLINT(corm-*) marker and every
// NO_THREAD_SAFETY_ANALYSIS attribute needs a non-trivial comment (three or
// more consecutive letters beyond the escape token itself) on the same or
// preceding line. The macro's definition site (thread_annotations.h) is
// exempt.
void CheckEscapeRationale(const SourceFile& f, DiagSink* sink);

// Path classification shared with the driver.
bool IsWaitExemptPath(const std::string& path);   // src/common/, src/rdma/
bool IsStrictWaitPath(const std::string& path);
bool IsThreadAnnotationsPath(const std::string& path);

}  // namespace corm_tidy

#endif  // CORM_TIDY_TOKEN_CHECKS_H_
