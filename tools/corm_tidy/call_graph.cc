#include "call_graph.h"

#include <algorithm>

namespace corm_tidy {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}
bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdent; }

// Keywords that look like `name (` but never are calls or definitions.
bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "new" ||
         s == "delete" || s == "throw" || s == "do" || s == "else" ||
         s == "case" || s == "defined" || s == "assert" || s == "operator";
}

// Index one past the matching closer for the opener at `open`.
size_t PastMatching(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], opener)) ++depth;
    if (IsPunct(toks[i], closer) && --depth == 0) return i + 1;
  }
  return toks.size();
}

// After a parameter list's `)`, decides whether a definition body follows.
// Accepts trailers (const, noexcept[(...)], override, final, ref-qualifiers,
// trailing return types) and constructor initializer lists. Returns the
// token index of the body `{`, or 0 when this is not a definition.
size_t FindBodyBrace(const std::vector<Token>& toks, size_t after_params) {
  size_t i = after_params;
  // Trailer tokens before `{`, `:", `;`, or `=`.
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) return i;
    if (IsPunct(t, ";") || IsPunct(t, "=") || IsPunct(t, ",") ||
        IsPunct(t, ")")) {
      return 0;  // declaration, default/deleted member, or an actual call
    }
    if (IsPunct(t, ":")) break;  // constructor initializer list
    if (IsIdent(t) || IsPunct(t, "->") || IsPunct(t, "::") ||
        IsPunct(t, "<") || IsPunct(t, ">") || IsPunct(t, "*") ||
        IsPunct(t, "&") || IsPunct(t, "&&")) {
      ++i;
      continue;
    }
    if (IsPunct(t, "(")) {  // noexcept(...)
      i = PastMatching(toks, i, "(", ")");
      continue;
    }
    if (IsPunct(t, "[")) {  // attribute [[...]]
      i = PastMatching(toks, i, "[", "]");
      continue;
    }
    return 0;
  }
  if (i >= toks.size()) return 0;
  // Initializer list: `: member(init), member{init}, base(init) {`.
  ++i;  // past `:`
  while (i < toks.size()) {
    // Entry name (possibly qualified/templated).
    while (i < toks.size() &&
           (IsIdent(toks[i]) || IsPunct(toks[i], "::") ||
            IsPunct(toks[i], "<") || IsPunct(toks[i], ">"))) {
      ++i;
    }
    if (i >= toks.size()) return 0;
    if (IsPunct(toks[i], "(")) {
      i = PastMatching(toks, i, "(", ")");
    } else if (IsPunct(toks[i], "{")) {
      i = PastMatching(toks, i, "{", "}");
    } else {
      return 0;
    }
    if (i < toks.size() && IsPunct(toks[i], ",")) {
      ++i;
      continue;
    }
    if (i < toks.size() && IsPunct(toks[i], "{")) return i;
    return 0;
  }
  return 0;
}

// Collects bare callee names in [begin, end): identifiers directly followed
// by `(`, including member calls (`x.F(`, `x->F(`) and qualified calls
// (`NS::F(`). Control keywords excluded.
void CollectCallees(const std::vector<Token>& toks, size_t begin, size_t end,
                    std::set<std::string>* out) {
  for (size_t i = begin; i < end; ++i) {
    if (!IsIdent(toks[i]) || i + 1 >= end || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    if (IsControlKeyword(toks[i].text)) continue;
    out->insert(toks[i].text);
  }
}

// True when any token in [begin, end) is a sanctioned-revalidation idiom —
// the same set remap_hazard.cc honors (epoch reads, Revalidate/Validate
// helpers, kCompacting / Pin* pinning).
bool ContainsRevalidation(const std::vector<Token>& toks, size_t begin,
                          size_t end) {
  for (size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (!IsIdent(t)) continue;
    if (t.text == "epoch" && i + 1 < end && IsPunct(toks[i + 1], "(")) {
      return true;
    }
    if (t.text.find("Revalidate") != std::string::npos ||
        t.text.find("Validate") != std::string::npos) {
      return true;
    }
    if (t.text == "kCompacting" || t.text.rfind("Pin", 0) == 0) return true;
  }
  return false;
}

}  // namespace

bool CallGraph::IsRemapRootName(const std::string& s) {
  return s == "Step" || s == "RunCompaction" || s == "RunPhaseSlice" ||
         s == "StepRemap" || s == "StepIndexRepair" || s == "HandleInbox" ||
         s == "HandleRpc" ||
         s == "ReapZombies" || s == "BackgroundCompactionLoop" ||
         s == "DrainInbox" || s == "PollInbox" || s == "DrainReplIngress" ||
         s == "RunAntiEntropySweep";
}

bool CallGraph::IsLookupRootName(const std::string& s) {
  return s == "Lookup" || s == "LookupBlockCached" || s == "LookupBlock" ||
         s == "ResolveObject" || s == "FindBlock" || s == "ResolveEntry";
}

std::vector<FunctionDef> FindFunctionDefs(const SourceFile& f) {
  const auto& toks = f.tokens();
  std::vector<FunctionDef> defs;
  size_t i = 0;
  while (i < toks.size()) {
    if (!IsIdent(toks[i]) || i + 1 >= toks.size() ||
        !IsPunct(toks[i + 1], "(") || IsControlKeyword(toks[i].text)) {
      ++i;
      continue;
    }
    const size_t after_params = PastMatching(toks, i + 1, "(", ")");
    if (after_params >= toks.size()) {
      ++i;
      continue;
    }
    const size_t body = FindBodyBrace(toks, after_params);
    if (body == 0) {
      ++i;
      continue;
    }
    FunctionDef def;
    def.name = toks[i].text;
    if (i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2])) {
      def.qualifier = toks[i - 2].text;
    }
    def.file = &f;
    def.line = toks[i].line;
    def.body_begin = body;
    def.body_end = PastMatching(toks, body, "{", "}");
    CollectCallees(toks, def.body_begin, def.body_end, &def.callees);
    defs.push_back(std::move(def));
    // Jump past the body: call sites inside it are callees, not defs.
    // (Inline methods of a class are still found individually — the class
    // braces are not a parameter-list+body shape, so the scan walks into
    // them token by token.)
    i = defs.back().body_end;
  }
  return defs;
}

CallGraph CallGraph::Build(const std::vector<const SourceFile*>& files) {
  CallGraph g;
  for (const SourceFile* f : files) {
    auto defs = FindFunctionDefs(*f);
    g.defs_.insert(g.defs_.end(), defs.begin(), defs.end());
  }

  // Local facts + the per-definition return-expression call sets.
  struct Local {
    const FunctionDef* def;
    std::set<std::string> return_calls;  // callees inside return statements
    bool returns_lookup_direct = false;
  };
  std::vector<Local> locals;
  locals.reserve(g.defs_.size());
  for (const FunctionDef& def : g.defs_) {
    Local loc;
    loc.def = &def;
    FunctionSummary& s = g.summaries_[def.name];
    const auto& toks = def.file->tokens();
    for (const std::string& callee : def.callees) {
      if (IsRemapRootName(callee)) s.advances_remap = true;
    }
    if (ContainsRevalidation(toks, def.body_begin, def.body_end)) {
      s.pins_or_validates = true;
    }
    // Return statements: `return <expr>;` — a lookup-root call or a
    // `.block` extraction in the expression makes the function a taint
    // source; other callees are recorded for the fixpoint.
    for (size_t i = def.body_begin; i < def.body_end; ++i) {
      if (!IsIdent(toks[i]) || toks[i].text != "return") continue;
      size_t e = i + 1;
      while (e < def.body_end && !IsPunct(toks[e], ";")) ++e;
      for (size_t j = i + 1; j < e; ++j) {
        if (!IsIdent(toks[j])) continue;
        const bool called = j + 1 < e && (IsPunct(toks[j + 1], "(") ||
                                          IsPunct(toks[j + 1], "<"));
        if (IsLookupRootName(toks[j].text) && called) {
          loc.returns_lookup_direct = true;
        } else if (called && !IsControlKeyword(toks[j].text)) {
          loc.return_calls.insert(toks[j].text);
        }
        if (toks[j].text == "block" && j >= 1 &&
            (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->"))) {
          loc.returns_lookup_direct = true;
        }
      }
      i = e;
    }
    if (loc.returns_lookup_direct) s.returns_lookup = true;
    locals.push_back(std::move(loc));
  }

  // Fixpoint: facts only ever flip false -> true, so iterate to stability.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Local& loc : locals) {
      FunctionSummary& s = g.summaries_[loc.def->name];
      if (!s.advances_remap || !s.pins_or_validates) {
        for (const std::string& callee : loc.def->callees) {
          auto it = g.summaries_.find(callee);
          if (it == g.summaries_.end()) continue;
          if (it->second.advances_remap && !s.advances_remap) {
            s.advances_remap = true;
            changed = true;
          }
          if (it->second.pins_or_validates && !s.pins_or_validates) {
            s.pins_or_validates = true;
            changed = true;
          }
        }
      }
      if (!s.returns_lookup) {
        for (const std::string& callee : loc.return_calls) {
          auto it = g.summaries_.find(callee);
          if (it != g.summaries_.end() && it->second.returns_lookup) {
            s.returns_lookup = true;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return g;
}

const FunctionSummary* CallGraph::SummaryFor(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

std::vector<const FunctionDef*> CallGraph::DefsNamed(
    const std::string& name) const {
  std::vector<const FunctionDef*> out;
  for (const FunctionDef& d : defs_) {
    if (d.name == name) out.push_back(&d);
  }
  return out;
}

}  // namespace corm_tidy
