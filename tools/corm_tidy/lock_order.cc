#include "lock_order.h"

#include <algorithm>
#include <climits>
#include <set>
#include <tuple>
#include <utility>

namespace corm_tidy {
namespace {

constexpr int kUnresolved = INT_MIN;

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}
bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdent; }
bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

// `src/core/block_directory.cc` -> `block_directory`: the unit ambiguous
// member names are resolved within (a .h/.cc pair share a stem).
std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// Evaluates the integer initializer of an enumerator: a number literal,
// optionally parenthesized. Enumerators without an initializer continue
// from the previous value, like the language says.
bool ParseIntLiteral(const std::string& text, int* out) {
  try {
    *out = std::stoi(text, nullptr, 0);
    return true;
  } catch (...) {
    return false;
  }
}

// Parses every `enum class LockRank ... { kName = N, ... }` in the file
// set. Fixtures carry their own mini enum; src/ contributes the real one
// from common/lock_rank.h.
void ParseRankEnums(const std::vector<const SourceFile*>& files,
                    std::map<std::string, int>* ranks) {
  for (const SourceFile* f : files) {
    const auto& toks = f->tokens();
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "enum") || !IsIdent(toks[i + 1], "class") ||
          !IsIdent(toks[i + 2], "LockRank")) {
        continue;
      }
      size_t j = i + 3;
      while (j < toks.size() && !IsPunct(toks[j], "{") &&
             !IsPunct(toks[j], ";")) {
        ++j;
      }
      if (j >= toks.size() || !IsPunct(toks[j], "{")) continue;
      int next_value = 0;
      for (++j; j < toks.size() && !IsPunct(toks[j], "}"); ++j) {
        if (!IsIdent(toks[j])) continue;
        const std::string name = toks[j].text;
        int value = next_value;
        if (j + 2 < toks.size() && IsPunct(toks[j + 1], "=") &&
            toks[j + 2].kind == Token::Kind::kNumber) {
          if (!ParseIntLiteral(toks[j + 2].text, &value)) continue;
          j += 2;
        }
        (*ranks)[name] = value;
        next_value = value + 1;
        while (j < toks.size() && !IsPunct(toks[j], ",") &&
               !IsPunct(toks[j], "}")) {
          ++j;
        }
        if (j < toks.size() && IsPunct(toks[j], "}")) break;
      }
      i = j;
    }
  }
}

// A ranked-lock member/variable whose rank is statically visible.
struct LockDecl {
  std::string name;
  int rank = 0;
  // Substrate mutexes are runtime-uninstrumented and only constrained to be
  // leaves: substrate-under-substrate nesting (two QP locks, a region map
  // and its entries) is the substrate's own business, so they check as
  // reentrant — equal rank allowed, CoRM ranks under them still diagnosed.
  bool reentrant = false;
  std::string stem;  // file stem of the declaration site
};

// Finds rank bindings of two shapes:
//   RankedSpinLock mu_{LockRank::kBlockAllocator};   (decl initializer)
//   Shard() : mu(LockRank::kNodeDirectory) {}        (ctor initializer)
// Both are `IDENT ( '{' | '(' ) LockRank :: kX ( '}' | ')' )`; the
// LockRankRegion RAII declaration shares the shape and is excluded (it is
// an acquisition, not a lock). corm::Mutex/SharedMutex members bind to
// kSubstrate when that rank exists: the runtime leaves them uninstrumented
// (always a leaf), and the static pass gives them the leaf rank so a CoRM
// lock acquired *under* one is still diagnosed.
void ParseLockDecls(const std::vector<const SourceFile*>& files,
                    const std::map<std::string, int>& ranks,
                    std::vector<LockDecl>* out) {
  const auto substrate = ranks.find("kSubstrate");
  for (const SourceFile* f : files) {
    const std::string stem = FileStem(f->path());
    const auto& toks = f->tokens();
    for (size_t i = 0; i + 4 < toks.size(); ++i) {
      if (IsIdent(toks[i]) && !IsIdent(toks[i], "LockRank") &&
          (IsPunct(toks[i + 1], "{") || IsPunct(toks[i + 1], "(")) &&
          IsIdent(toks[i + 2], "LockRank") && IsPunct(toks[i + 3], "::") &&
          IsIdent(toks[i + 4])) {
        if (i > 0 && IsIdent(toks[i - 1], "LockRankRegion")) continue;
        const auto it = ranks.find(toks[i + 4].text);
        if (it == ranks.end()) continue;
        out->push_back({toks[i].text, it->second, false, stem});
        continue;
      }
      if (substrate != ranks.end() &&
          (IsIdent(toks[i], "Mutex") || IsIdent(toks[i], "SharedMutex")) &&
          IsIdent(toks[i + 1]) && IsPunct(toks[i + 2], ";")) {
        out->push_back({toks[i + 1].text, substrate->second, true, stem});
      }
    }
  }
}

// Rank (and reentrancy) of the lock named `name` used from a file with stem
// `use_stem`. Globally unique rank wins; otherwise the declaration sharing
// the use site's file stem (the .h of a .cc) disambiguates; otherwise
// unresolved — skipped, a documented precision loss, never a false
// positive.
std::pair<int, bool> ResolveLock(const std::vector<LockDecl>& decls,
                                 const std::string& name,
                                 const std::string& use_stem) {
  std::set<std::pair<int, bool>> all;
  std::set<std::pair<int, bool>> stem_match;
  for (const LockDecl& d : decls) {
    if (d.name != name) continue;
    all.insert({d.rank, d.reentrant});
    if (d.stem == use_stem) stem_match.insert({d.rank, d.reentrant});
  }
  if (all.size() == 1) return *all.begin();
  if (stem_match.size() == 1) return *stem_match.begin();
  return {kUnresolved, false};
}

struct Acquisition {
  int rank = 0;
  bool reentrant = false;
  int depth = 0;  // brace depth the guard was declared at
};

// A call made while ranks were held; checked against propagated summaries.
struct HeldCall {
  const SourceFile* file = nullptr;
  std::string callee;
  int line = 0;
  int col = 0;
  int held_max = 0;
  std::string held_name;
};

}  // namespace

LockOrderAnalysis LockOrderAnalysis::Run(
    const std::vector<const SourceFile*>& files, CallGraph* cg,
    DiagSink* sink) {
  LockOrderAnalysis a;
  ParseRankEnums(files, &a.ranks_);
  if (a.ranks_.empty()) return a;  // no hierarchy in scope, nothing to check

  std::vector<LockDecl> decls;
  ParseLockDecls(files, a.ranks_, &decls);

  std::vector<HeldCall> held_calls;
  std::map<std::string, std::set<int>> direct_acquires;

  // Definitions to walk: the call graph's when supplied (fixpoint needs the
  // same def set), a fresh scan otherwise.
  std::vector<FunctionDef> scanned;
  const std::vector<FunctionDef>* defs;
  if (cg != nullptr) {
    defs = &cg->definitions();
  } else {
    for (const SourceFile* f : files) {
      auto d = FindFunctionDefs(*f);
      scanned.insert(scanned.end(), d.begin(), d.end());
    }
    defs = &scanned;
  }

  for (const FunctionDef& def : *defs) {
    const SourceFile& f = *def.file;
    const auto& toks = f.tokens();
    const std::string stem = FileStem(f.path());
    std::vector<Acquisition> held;
    int depth = 0;

    auto held_max = [&]() {
      int m = kUnresolved;
      for (const Acquisition& h : held) m = std::max(m, h.rank);
      return m;
    };

    for (size_t i = def.body_begin; i < def.body_end; ++i) {
      const Token& t = toks[i];
      if (IsPunct(t, "{")) {
        ++depth;
        continue;
      }
      if (IsPunct(t, "}")) {
        while (!held.empty() && held.back().depth >= depth) held.pop_back();
        --depth;
        continue;
      }
      if (!IsIdent(t)) continue;

      // Acquisition: LockGuard<M> g(lockexpr) / SharedLockGuard<M> g(...).
      int rank = kUnresolved;
      bool reentrant = false;
      size_t past = 0;  // one past the event, 0 when none matched
      if ((t.text == "LockGuard" || t.text == "SharedLockGuard") &&
          i + 1 < def.body_end && IsPunct(toks[i + 1], "<")) {
        size_t j = i + 2;
        while (j < def.body_end && !IsPunct(toks[j], ">")) ++j;
        if (j + 2 < def.body_end && IsIdent(toks[j + 1]) &&
            IsPunct(toks[j + 2], "(")) {
          // Lock expression: the last identifier before `)` — handles
          // `mu_`, `s.mu`, `node->alias_mu_`.
          size_t k = j + 3;
          std::string lock_name;
          while (k < def.body_end && !IsPunct(toks[k], ")")) {
            if (IsIdent(toks[k])) lock_name = toks[k].text;
            ++k;
          }
          if (!lock_name.empty()) {
            std::tie(rank, reentrant) = ResolveLock(decls, lock_name, stem);
            past = k;
          }
        }
      }
      // Acquisition: LockRankRegion r(LockRank::kX) — reentrant.
      if (t.text == "LockRankRegion" && i + 6 < def.body_end &&
          IsIdent(toks[i + 1]) && IsPunct(toks[i + 2], "(") &&
          IsIdent(toks[i + 3], "LockRank") && IsPunct(toks[i + 4], "::") &&
          IsIdent(toks[i + 5])) {
        const auto it = a.ranks_.find(toks[i + 5].text);
        if (it != a.ranks_.end()) {
          rank = it->second;
          reentrant = true;
          past = i + 6;
        }
      }

      if (rank != kUnresolved && past != 0) {
        const int held_top = held_max();
        if (held_top != kUnresolved) {
          a.edges_.push_back(
              {held_top, rank, reentrant, f.path(), t.line});
          const bool ok = reentrant ? rank >= held_top : rank > held_top;
          if (!ok) {
            sink->Report(
                f, kCheckLockRank, t.line, t.col,
                "lock-order violation: acquiring '" + a.RankName(rank) +
                    "' (" + std::to_string(rank) + ") while holding '" +
                    a.RankName(held_top) + "' (" + std::to_string(held_top) +
                    "); the hierarchy in common/lock_rank.h only permits " +
                    (reentrant ? "equal or " : "") +
                    "increasing ranks");
          }
        }
        held.push_back({rank, reentrant, depth});
        direct_acquires[def.name].insert(rank);
        i = past;
        continue;
      }

      // Call site under held ranks: remember for the interprocedural pass.
      if (cg != nullptr && !held.empty() && i + 1 < def.body_end &&
          IsPunct(toks[i + 1], "(") && t.text != "LockGuard" &&
          t.text != "SharedLockGuard" && t.text != "LockRankRegion") {
        const int m = held_max();
        held_calls.push_back(
            {&f, t.text, t.line, t.col, m, a.RankName(m)});
      }
    }
  }

  if (cg == nullptr) return a;

  // Deposit direct may-acquire sets, then propagate them over the call
  // graph with the usual grow-only fixpoint.
  auto& summaries = cg->summaries();
  for (const auto& [name, ranks] : direct_acquires) {
    summaries[name].acquires.insert(ranks.begin(), ranks.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef& def : cg->definitions()) {
      FunctionSummary& s = summaries[def.name];
      for (const std::string& callee : def.callees) {
        const auto it = summaries.find(callee);
        if (it == summaries.end()) continue;
        for (int r : it->second.acquires) {
          if (s.acquires.insert(r).second) changed = true;
        }
      }
    }
  }

  // A call that may (transitively) acquire a rank *below* one the caller
  // holds is a latent inversion even though no guard is visible at the call
  // site. Equal rank is allowed: summaries cannot tell a reentrant region
  // from a lock, and regions re-enter legitimately.
  for (const HeldCall& hc : held_calls) {
    const FunctionSummary* s = cg->SummaryFor(hc.callee);
    if (s == nullptr || s->acquires.empty()) continue;
    const int lowest = *s->acquires.begin();
    if (lowest >= hc.held_max) continue;
    sink->Report(
        *hc.file, kCheckLockRank, hc.line, hc.col,
        "lock-order violation: call to '" + hc.callee +
            "()' while holding '" + hc.held_name + "' (" +
            std::to_string(hc.held_max) + ") may acquire '" +
            a.RankName(lowest) + "' (" + std::to_string(lowest) +
            "), a lower rank; hoist the call out of the critical section "
            "or re-rank the locks (common/lock_rank.h)");
  }
  return a;
}

std::string LockOrderAnalysis::RankName(int value) const {
  for (const auto& [name, v] : ranks_) {
    if (v == value) return name;
  }
  return "rank" + std::to_string(value);
}

void LockOrderAnalysis::Dump(std::ostream& os) const {
  // Ranks sorted by value (ties by name), edges in discovery order.
  std::vector<std::pair<int, std::string>> by_value;
  for (const auto& [name, v] : ranks_) by_value.emplace_back(v, name);
  std::sort(by_value.begin(), by_value.end());
  for (const auto& [v, name] : by_value) {
    os << "rank " << name << " " << v << "\n";
  }
  for (const LockOrderEdge& e : edges_) {
    os << "edge " << RankName(e.held_rank) << " " << e.held_rank << " "
       << RankName(e.acquired_rank) << " " << e.acquired_rank << " "
       << (e.reentrant ? 1 : 0) << " " << e.file << ":" << e.line << "\n";
  }
}

}  // namespace corm_tidy
