// corm-tidy: Clang LibTooling engine (optional).
//
// Built only when CMake finds the Clang development package
// (CORM_TIDY_HAVE_CLANG); otherwise a stub reports the engine unavailable
// and the driver falls back to the token engine, mirroring lint.sh's
// degradation ladder (AST -> token -> grep).
//
// Engine split (DESIGN.md §10): the AST engine owns the checks where *type
// information* is the precision win — allocation detection (corm-raw-new,
// corm-hotpath-alloc: placement-new vs nothrow-new, implicit growth only on
// allocating container types, lambda-to-std::function conversions, and
// sight through macros). The lexical checks (corm-unbounded-wait,
// corm-escape-rationale) and the source-order dataflow (corm-remap-hazard)
// are engine-independent by construction and always run token-side, so a
// diagnostic from them is bit-identical on every host.

#ifndef CORM_TIDY_AST_ENGINE_H_
#define CORM_TIDY_AST_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "token_checks.h"

namespace corm_tidy {

// True when this binary was built with the LibTooling engine.
bool AstEngineAvailable();

// Runs the AST-side checks (corm-raw-new, corm-hotpath-alloc) over the
// given .cc files using the compilation database in `build_dir`. Headers
// are analyzed through the TUs that include them: `files_by_real_path`
// maps canonical paths of every file under lint to its SourceFile (for
// NOLINT windows + the hotpath contract); locations outside that set are
// ignored. Diagnostics are deduplicated by the caller (a header included
// by N TUs reports N times). Returns false when the tooling run itself
// failed (missing database, TU that does not parse).
bool RunAstEngine(const std::string& build_dir,
                  const std::vector<std::string>& cc_files,
                  const std::map<std::string, const SourceFile*>&
                      files_by_real_path,
                  DiagSink* sink, std::string* err);

}  // namespace corm_tidy

#endif  // CORM_TIDY_AST_ENGINE_H_
