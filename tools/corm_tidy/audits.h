// corm-tidy: project contract audits (`corm-tidy --audit`).
//
// Two exhaustiveness contracts that rot silently without a machine check:
//
//   Fault sites.  Every named injection site in src/sim/fault_injector.h
//   (the fault_sites namespace) must be (a) exercised by at least one test
//   under tests/ — referenced by constant name or by its literal site
//   string — and (b) listed in DESIGN.md §6.2's fault table (the lines
//   between the fault-site-table-begin/end markers). A site wired into the
//   substrate but never armed by a test is untested failure-handling code;
//   a site missing from the table is an undocumented failure mode. Both
//   directions are checked: a table row whose site no longer exists fails
//   too.
//
//   Sharded counters.  Every StatCounter field of NodeStatShard
//   (src/core/corm_node.h) must (a) appear as a field of the NodeStats
//   snapshot, (b) be summed in CormNode::stats()'s aggregation
//   (`out.N += s.N.Load()` in corm_node.cc) — the line that is forgotten
//   when a counter is added — and (c) be listed in EXPERIMENTS.md's stats
//   schema (the stats-schema-begin/end block), which is what bench scripts
//   and plots consume. Again both directions: a schema row for a counter
//   that was removed fails.
//
// Exit codes: 0 all contracts hold, 1 violations, 2 the tree is missing a
// prerequisite (no marker block, no fault_injector.h, ...) — an audit that
// cannot run must not report success.

#ifndef CORM_TIDY_AUDITS_H_
#define CORM_TIDY_AUDITS_H_

#include <ostream>
#include <string>

namespace corm_tidy {

// Runs both audits against the repo rooted at `root` (expects src/, tests/,
// DESIGN.md, EXPERIMENTS.md under it).
int RunAudits(const std::string& root, std::ostream& os);

}  // namespace corm_tidy

#endif  // CORM_TIDY_AUDITS_H_
