#include "audits.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "source_file.h"

namespace corm_tidy {
namespace {

namespace fs = std::filesystem;

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}
bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Loads every *.h/*.cc under `dir` (sorted for deterministic reports).
bool LoadTree(const fs::path& dir,
              std::vector<std::unique_ptr<SourceFile>>* out,
              std::string* err) {
  if (!fs::is_directory(dir)) {
    *err = dir.generic_string() + " is not a directory";
    return false;
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const auto ext = entry.path().extension();
    if (entry.is_regular_file() && (ext == ".h" || ext == ".cc")) {
      paths.push_back(entry.path().generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) {
    auto f = std::make_unique<SourceFile>();
    if (!SourceFile::Load(p, f.get(), err)) return false;
    out->push_back(std::move(f));
  }
  return true;
}

// `const char* kName = "site.string";` inside `namespace fault_sites {}`.
// Returns constant name -> site string.
std::map<std::string, std::string> ParseFaultSites(const SourceFile& f) {
  std::map<std::string, std::string> sites;
  const auto& toks = f.tokens();
  size_t i = 0;
  for (; i + 2 < toks.size(); ++i) {
    if (IsIdent(toks[i], "namespace") && IsIdent(toks[i + 1], "fault_sites") &&
        IsPunct(toks[i + 2], "{")) {
      break;
    }
  }
  if (i + 2 >= toks.size()) return sites;
  int depth = 0;
  for (i += 2; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "{")) ++depth;
    if (IsPunct(toks[i], "}") && --depth == 0) break;
    if (toks[i].kind == Token::Kind::kIdent &&
        toks[i].text.rfind("k", 0) == 0 && i + 2 < toks.size() &&
        IsPunct(toks[i + 1], "=") &&
        toks[i + 2].kind == Token::Kind::kString) {
      sites[toks[i].text] = toks[i + 2].text;
    }
  }
  return sites;
}

// Backticked entries inside a `<!-- marker-begin --> ... <!-- marker-end -->`
// block of a markdown file. Returns false when the markers are absent.
bool ParseMarkerBlock(const std::string& text, const std::string& marker,
                      std::set<std::string>* out) {
  const std::string begin = "<!-- " + marker + "-begin -->";
  const std::string end = "<!-- " + marker + "-end -->";
  const size_t b = text.find(begin);
  const size_t e = text.find(end);
  if (b == std::string::npos || e == std::string::npos || e < b) return false;
  size_t i = b + begin.size();
  while (i < e) {
    const size_t open = text.find('`', i);
    if (open == std::string::npos || open >= e) break;
    const size_t close = text.find('`', open + 1);
    if (close == std::string::npos || close >= e) break;
    const std::string entry = text.substr(open + 1, close - open - 1);
    if (!entry.empty()) out->insert(entry);
    i = close + 1;
  }
  return true;
}

// Fields of `struct Name { ... }` whose declared type is `type_name`.
std::vector<std::string> StructFieldsOfType(const SourceFile& f,
                                            const std::string& struct_name,
                                            const std::string& type_name) {
  std::vector<std::string> fields;
  const auto& toks = f.tokens();
  size_t i = 0;
  for (; i + 2 < toks.size(); ++i) {
    if (IsIdent(toks[i], "struct") &&
        IsIdent(toks[i + 1], struct_name.c_str()) &&
        IsPunct(toks[i + 2], "{")) {
      break;
    }
  }
  if (i + 2 >= toks.size()) return fields;
  int depth = 0;
  for (i += 2; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "{")) ++depth;
    if (IsPunct(toks[i], "}") && --depth == 0) break;
    if (depth == 1 && IsIdent(toks[i], type_name.c_str()) &&
        i + 1 < toks.size() && toks[i + 1].kind == Token::Kind::kIdent) {
      fields.push_back(toks[i + 1].text);
    }
  }
  return fields;
}

}  // namespace

int RunAudits(const std::string& root, std::ostream& os) {
  const fs::path rp(root);
  std::string err;

  std::vector<std::unique_ptr<SourceFile>> src_files;
  std::vector<std::unique_ptr<SourceFile>> test_files;
  if (!LoadTree(rp / "src", &src_files, &err) ||
      !LoadTree(rp / "tests", &test_files, &err)) {
    os << "FATAL: " << err << "\n";
    return 2;
  }

  int failures = 0;
  auto fail = [&](const std::string& msg) {
    ++failures;
    os << "  FAIL " << msg << "\n";
  };

  // --- Fault-site exhaustiveness. -----------------------------------------
  const SourceFile* injector = nullptr;
  for (const auto& f : src_files) {
    if (f->path().size() >= 16 &&
        f->path().compare(f->path().size() - 16, 16, "fault_injector.h") ==
            0) {
      injector = f.get();
      break;
    }
  }
  if (injector == nullptr) {
    os << "FATAL: no fault_injector.h under " << (rp / "src").generic_string()
       << "\n";
    return 2;
  }
  const auto sites = ParseFaultSites(*injector);
  if (sites.empty()) {
    os << "FATAL: no fault_sites constants in " << injector->path() << "\n";
    return 2;
  }

  std::string design;
  if (!ReadFile(rp / "DESIGN.md", &design)) {
    os << "FATAL: cannot read DESIGN.md under " << root << "\n";
    return 2;
  }
  std::set<std::string> table;
  if (!ParseMarkerBlock(design, "fault-site-table", &table)) {
    os << "FATAL: DESIGN.md has no fault-site-table markers\n";
    return 2;
  }

  std::set<std::string> site_strings;
  for (const auto& [cname, site] : sites) {
    site_strings.insert(site);
    // Exercised: a test names the constant or spells the site string.
    bool exercised = false;
    for (const auto& tf : test_files) {
      for (const Token& t : tf->tokens()) {
        if ((t.kind == Token::Kind::kIdent && t.text == cname) ||
            (t.kind == Token::Kind::kString && t.text == site)) {
          exercised = true;
          break;
        }
      }
      if (exercised) break;
    }
    if (!exercised) {
      fail("fault site `" + site + "` (" + cname +
           ") is exercised by no test under tests/");
    }
    if (table.count(site) == 0) {
      fail("fault site `" + site +
           "` is missing from the DESIGN.md fault-site table");
    }
  }
  for (const std::string& entry : table) {
    if (site_strings.count(entry) == 0) {
      fail("DESIGN.md fault-site table lists `" + entry +
           "`, which is not a fault_sites constant");
    }
  }
  if (failures == 0) {
    os << "  OK   fault sites: " << sites.size()
       << " site(s) exercised and documented\n";
  }

  // --- Sharded-counter exhaustiveness. ------------------------------------
  const int fault_failures = failures;
  const SourceFile* node_h = nullptr;
  const SourceFile* node_cc = nullptr;
  for (const auto& f : src_files) {
    const auto& p = f->path();
    auto ends_with = [&](const char* suffix) {
      const size_t n = std::string(suffix).size();
      return p.size() >= n && p.compare(p.size() - n, n, suffix) == 0;
    };
    if (ends_with("corm_node.h")) node_h = f.get();
    if (ends_with("corm_node.cc")) node_cc = f.get();
  }
  if (node_h == nullptr || node_cc == nullptr) {
    os << "FATAL: corm_node.h/corm_node.cc not found under src/\n";
    return 2;
  }
  const auto counters =
      StructFieldsOfType(*node_h, "NodeStatShard", "StatCounter");
  if (counters.empty()) {
    os << "FATAL: no StatCounter fields in NodeStatShard (" << node_h->path()
       << ")\n";
    return 2;
  }
  const auto snapshot_vec =
      StructFieldsOfType(*node_h, "NodeStats", "uint64_t");
  const std::set<std::string> snapshot(snapshot_vec.begin(),
                                       snapshot_vec.end());

  // Aggregated in stats(): `out.N += s.N` pairs in corm_node.cc.
  std::set<std::string> aggregated;
  {
    const auto& toks = node_cc->tokens();
    for (size_t i = 0; i + 6 < toks.size(); ++i) {
      if (IsIdent(toks[i], "out") && IsPunct(toks[i + 1], ".") &&
          toks[i + 2].kind == Token::Kind::kIdent &&
          IsPunct(toks[i + 3], "+=") && IsIdent(toks[i + 4], "s") &&
          IsPunct(toks[i + 5], ".") &&
          toks[i + 6].kind == Token::Kind::kIdent &&
          toks[i + 2].text == toks[i + 6].text) {
        aggregated.insert(toks[i + 2].text);
      }
    }
  }

  std::string experiments;
  if (!ReadFile(rp / "EXPERIMENTS.md", &experiments)) {
    os << "FATAL: cannot read EXPERIMENTS.md under " << root << "\n";
    return 2;
  }
  std::set<std::string> schema;
  if (!ParseMarkerBlock(experiments, "stats-schema", &schema)) {
    os << "FATAL: EXPERIMENTS.md has no stats-schema markers\n";
    return 2;
  }

  for (const std::string& c : counters) {
    if (snapshot.count(c) == 0) {
      fail("NodeStatShard counter `" + c +
           "` has no NodeStats snapshot field");
    }
    if (aggregated.count(c) == 0) {
      fail("NodeStatShard counter `" + c +
           "` is not summed in CormNode::stats() (corm_node.cc)");
    }
    if (schema.count(c) == 0) {
      fail("NodeStatShard counter `" + c +
           "` is missing from the EXPERIMENTS.md stats schema");
    }
  }
  const std::set<std::string> counter_set(counters.begin(), counters.end());
  for (const std::string& entry : schema) {
    if (counter_set.count(entry) == 0) {
      fail("EXPERIMENTS.md stats schema lists `" + entry +
           "`, which is not a NodeStatShard counter");
    }
  }
  if (failures == fault_failures) {
    os << "  OK   sharded counters: " << counters.size()
       << " counter(s) snapshotted, aggregated, and documented\n";
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace corm_tidy
