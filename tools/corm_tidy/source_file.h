// corm-tidy: source model shared by both engines.
//
// A SourceFile carries the lexed token stream plus the *comment layer* —
// NOLINT suppressions, escape rationales, and the `// corm-hotpath` file
// contract. Both engines (AST and token) route their diagnostics through
// the same suppression logic so a NOLINT means the same thing regardless of
// which engine happened to be available on the build host.

#ifndef CORM_TIDY_SOURCE_FILE_H_
#define CORM_TIDY_SOURCE_FILE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace corm_tidy {

// Stable check identifiers. These are the NOLINT names and the `[...]`
// suffix on every diagnostic; lint.sh and the fixture suite key on them.
inline constexpr char kCheckRawNew[] = "corm-raw-new";
inline constexpr char kCheckHotpathAlloc[] = "corm-hotpath-alloc";
inline constexpr char kCheckUnboundedWait[] = "corm-unbounded-wait";
inline constexpr char kCheckEscapeRationale[] = "corm-escape-rationale";
inline constexpr char kCheckRemapHazard[] = "corm-remap-hazard";
inline constexpr char kCheckLockRank[] = "corm-lock-rank";

struct CheckInfo {
  const char* id;
  const char* summary;
};

// The catalog, in the order --list-checks prints it.
const std::vector<CheckInfo>& CheckCatalog();

struct Diagnostic {
  std::string file;   // display path
  int line = 0;
  int col = 0;
  std::string check;  // one of the kCheck* ids
  std::string message;
};

class SourceFile {
 public:
  // Loads and lexes `path`. Returns false (with *err set) on I/O failure.
  static bool Load(const std::string& path, SourceFile* out,
                   std::string* err);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return lex_.tokens; }

  // True when the first line is the `// corm-hotpath` data-plane contract
  // marker (DESIGN.md §7).
  bool is_hotpath() const { return hotpath_; }

  // Comment text on `line` ("" when none).
  std::string CommentOn(int line) const;

  // True when `check` is suppressed at `line`: a NOLINT naming it (or an
  // accepted alias) sits on the same or the preceding line. Aliases keep
  // the historical grep-era markers working:
  //   corm-spin-wait  also suppresses corm-unbounded-wait (lint.sh rule 5)
  //   corm-raw-new    also suppresses corm-hotpath-alloc  (lint.sh rule 7)
  bool IsSuppressed(const std::string& check, int line) const;

  // NOLINT markers present on `line` itself (no window), for the
  // escape-rationale check and the compaction-engine escape ban.
  const std::set<std::string>& NolintsOn(int line) const;

  // Lines (sorted) carrying at least one NOLINT(corm-*) marker.
  std::vector<int> NolintLines() const;

 private:
  bool LineSuppresses(const std::string& check, int line) const;

  std::string path_;
  LexResult lex_;
  bool hotpath_ = false;
  std::map<int, std::set<std::string>> nolints_;  // line -> check ids
};

}  // namespace corm_tidy

#endif  // CORM_TIDY_SOURCE_FILE_H_
