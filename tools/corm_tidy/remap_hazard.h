// corm-tidy: the corm-remap-hazard check.
//
// CoRM's defining hazard (paper §3.2-§3.3, DESIGN.md §9): background
// compaction *moves objects under live code*. A raw `Block*` (or a lookup
// Entry holding one) obtained from the block directory is only meaningful
// until the next remap point — a call that may advance
// CompactionEngine::Step(), re-enter the RPC/inbox drain (which can itself
// step the engine or mutate the directory), or otherwise release the
// kCompacting hand-off. Code that caches such a pointer across a remap
// point and then dereferences it is exactly the relocation bug class Mesh
// (Powers et al.) documents for compacting C/C++ allocators, and no grep
// can see it: the taint, the remap call, and the stale use are three
// different lines.
//
// The analysis is a deliberately simple source-order dataflow, shared by
// both engines so a diagnostic means the same thing on every host:
//
//   taint   a declaration (or assignment) whose initializer calls a
//           directory/object lookup (Lookup, LookupBlockCached,
//           ResolveObject, ...) or extracts `.block` from a tainted value
//   hazard  a later call, in the same scope chain, to a remap point
//           (Step, HandleInbox, HandleRpc, ReapZombies, ...) marks every
//           live tainted variable hazardous
//   use     any subsequent read of a hazardous variable fires, unless the
//           code revalidated first: re-assigned the variable from a fresh
//           lookup, compared the directory epoch, or pinned the object
//           (kCompacting / Pin*) — the three sanctioned idioms
//
// False-negative bias is accepted (this is a linter, not a verifier); the
// value is that the three-line pattern becomes mechanically visible.

#ifndef CORM_TIDY_REMAP_HAZARD_H_
#define CORM_TIDY_REMAP_HAZARD_H_

#include "token_checks.h"

namespace corm_tidy {

void CheckRemapHazard(const SourceFile& f, DiagSink* sink);

}  // namespace corm_tidy

#endif  // CORM_TIDY_REMAP_HAZARD_H_
