// corm-tidy: the corm-remap-hazard check.
//
// CoRM's defining hazard (paper §3.2-§3.3, DESIGN.md §9): background
// compaction *moves objects under live code*. A raw `Block*` (or a lookup
// Entry holding one) obtained from the block directory is only meaningful
// until the next remap point — a call that may advance
// CompactionEngine::Step(), re-enter the RPC/inbox/repl-ingress drain
// (which can itself step the engine or mutate the directory), or otherwise
// release the kCompacting hand-off. Code that caches such a pointer across
// a remap point and then dereferences it is exactly the relocation bug
// class Mesh (Powers et al.) documents for compacting C/C++ allocators,
// and no grep can see it: the taint, the remap call, and the stale use are
// three different lines.
//
// The analysis is a deliberately simple source-order dataflow, shared by
// both engines so a diagnostic means the same thing on every host:
//
//   taint   a declaration (or assignment) whose initializer calls a
//           directory/object lookup (Lookup, LookupBlockCached,
//           ResolveObject, ...) or extracts `.block` from a tainted value
//   hazard  a later call, in the same scope chain, to a remap point
//           (Step, HandleInbox, HandleRpc, ReapZombies, ...) marks every
//           live tainted variable hazardous
//   use     any subsequent read of a hazardous variable fires, unless the
//           code revalidated first: re-assigned the variable from a fresh
//           lookup, compared the directory epoch, or pinned the object
//           (kCompacting / Pin*) — the three sanctioned idioms
//
// Since v2 the dataflow is *interprocedural*: when a CallGraph is supplied,
// the three token classes above are widened by function summaries —
//
//   taint   also an assignment from any function whose summary says
//           returns-lookup-tainted (a helper wrapping the lookup)
//   hazard  also a call to any function whose summary says
//           may-advance-remap (a remap point buried N calls deep)
//   clear   also a call to any function whose summary says
//           pins-or-validates (a helper performing the revalidation)
//
// so hiding either side of the three-line pattern behind project helpers
// no longer hides the hazard. Passing a null CallGraph reproduces the PR-6
// per-function analysis exactly (`corm-tidy --no-interproc`), which the
// fixture suite uses to prove the interprocedural cases are *new* catches.
//
// False-negative bias is accepted (this is a linter, not a verifier); the
// value is that the three-line pattern becomes mechanically visible.
//
// Strict set: files under src/index/ get no NOLINT escape (and the marker
// itself is flagged there), mirroring the rule-8 strict-wait treatment —
// the bucket table is what a remote client probes one-sided mid-remap, so
// a suppressed hazard there voids the keyed lookup contract (DESIGN.md
// §13).

#ifndef CORM_TIDY_REMAP_HAZARD_H_
#define CORM_TIDY_REMAP_HAZARD_H_

#include "call_graph.h"
#include "token_checks.h"

namespace corm_tidy {

// `cg` may be null: intra-procedural (PR-6) behavior only.
void CheckRemapHazard(const SourceFile& f, const CallGraph* cg,
                      DiagSink* sink);

}  // namespace corm_tidy

#endif  // CORM_TIDY_REMAP_HAZARD_H_
