#include "lexer.h"

#include <cctype>

namespace corm_tidy {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char operators the checks care about. Longest match first; anything
// not listed lexes as a single-char punct, which is fine for our purposes.
const char* kMultiPunct[] = {
    "->", "::", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "<<", ">>", "...",
};

}  // namespace

LexResult Lex(const std::string& text) {
  LexResult out;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto add_comment = [&](int at_line, const std::string& s) {
    auto& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot += s;
  };

  bool at_line_start = true;  // only whitespace seen on this line so far
  while (i < n) {
    const char c = text[i];

    if (c == '\n') {
      at_line_start = true;
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Preprocessor directive: skip the logical line (with continuations).
    // A continuation is a backslash immediately before the line break in
    // either convention — LF or CRLF. Before the CRLF case was handled, a
    // directive saved with Windows line endings ended at the `\r`, and its
    // continuation lines leaked into the token stream as ordinary code.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n &&
            (text[i + 1] == '\n' ||
             (text[i + 1] == '\r' && i + 2 < n && text[i + 2] == '\n'))) {
          advance(text[i + 1] == '\r' ? 3 : 2);
          continue;
        }
        if (text[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      size_t j = i;
      while (j < n && text[j] != '\n') ++j;
      add_comment(start_line, text.substr(i, j - i));
      advance(j - i);
      continue;
    }

    // Block comment: record its text per line so NOLINT and rationale
    // checks see every line it spans.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t seg_start = i;
      advance(2);
      while (i < n) {
        if (text[i] == '*' && i + 1 < n && text[i + 1] == '/') {
          add_comment(line, text.substr(seg_start, i + 2 - seg_start));
          advance(2);
          break;
        }
        if (text[i] == '\n') {
          add_comment(line, text.substr(seg_start, i - seg_start));
          advance(1);
          seg_start = i;
          continue;
        }
        advance(1);
      }
      continue;
    }

    // Raw string literal, with or without an encoding prefix:
    // R"delim(...)delim", u8R"...", uR"...", UR"...", LR"...".
    // Lexed before the identifier branch: a prefixed raw string that fell
    // through to it would tokenize as identifier + ordinary string, and a
    // raw string body spanning quotes or newlines would leak its contents
    // (`delete p`, `while (x.load())`, ...) into the token stream as code.
    auto lex_raw_string = [&](size_t r) {
      size_t j = r + 2;  // past R"
      std::string delim;
      while (j < n && text[j] != '(' && text[j] != '\n') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      size_t body = j < n ? j + 1 : n;  // past the (
      size_t end = text.find(closer, j);
      std::string value =
          end == std::string::npos ? "" : text.substr(body, end - body);
      end = (end == std::string::npos) ? n : end + closer.size();
      out.tokens.push_back(
          {Token::Kind::kString, std::move(value), line, col});
      advance(end - i);
    };
    auto lex_quoted = [&](size_t q) {
      const char quote = text[q];
      const int tline = line;
      const int tcol = col;
      advance(q + 1 - i);
      const size_t body = i;
      while (i < n && text[i] != quote && text[i] != '\n') {
        advance(text[i] == '\\' && i + 1 < n ? 2 : 1);
      }
      std::string value = text.substr(body, i - body);
      if (i < n && text[i] == quote) advance(1);
      out.tokens.push_back({quote == '"' ? Token::Kind::kString
                                         : Token::Kind::kChar,
                            std::move(value), tline, tcol});
    };

    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      lex_raw_string(i);
      continue;
    }
    if (c == '"' || c == '\'') {
      lex_quoted(i);
      continue;
    }

    // Identifier / keyword — or an encoding prefix (u8, u, U, L) glued to a
    // string/char literal, which must lex as ONE literal token, not as
    // identifier + literal.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      const std::string ident = text.substr(i, j - i);
      if (j < n && text[j] == '"' &&
          (ident == "u8R" || ident == "uR" || ident == "UR" ||
           ident == "LR")) {
        lex_raw_string(j - 1);  // hand the R" pair to the raw-string lexer
        continue;
      }
      if (j < n && (text[j] == '"' || text[j] == '\'') &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        lex_quoted(j);
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, ident, line, col});
      advance(j - i);
      continue;
    }

    // Number (loose: digits plus the usual literal chars; precision is
    // irrelevant, the checks only need "this is not an identifier").
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       // C++14 digit separator: 0x12345678'BEEFAAAB must stay
                       // one token — split at the ', the tail would lex as an
                       // unterminated char literal and eat the rest of the line
                       (text[j] == '\'' && j + 1 < n &&
                        IsIdentChar(text[j + 1])) ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, text.substr(i, j - i), line, col});
      advance(j - i);
      continue;
    }

    // Punctuation: longest listed multi-char match, else one char.
    std::string punct(1, c);
    for (const char* mp : kMultiPunct) {
      const size_t len = std::char_traits<char>::length(mp);
      if (text.compare(i, len, mp) == 0 && len > punct.size()) punct = mp;
    }
    out.tokens.push_back({Token::Kind::kPunct, punct, line, col});
    advance(punct.size());
  }
  return out;
}

}  // namespace corm_tidy
