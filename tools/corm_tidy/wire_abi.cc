#include "wire_abi.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>

namespace corm_tidy {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}
bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdent; }
bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

// The structs whose layout is wire format. Adding a new wire struct means
// adding it here AND regenerating tools/corm_tidy/wire_abi.json — both
// show up in review.
const char* kRoots[] = {"GlobalAddr", "ReplObjectHeader", "ReplRecordHeader"};

// Sizes (== alignments: every entry is its own alignment) of the types wire
// structs may use. Project aliases resolve to their fixed-width definitions:
// sim::VAddr = uint64_t, rdma::RKey = uint32_t, LockState : uint8_t.
const std::map<std::string, uint32_t>& TypeSizes() {
  static const std::map<std::string, uint32_t> kSizes = {
      {"bool", 1},     {"char", 1},     {"int8_t", 1},  {"uint8_t", 1},
      {"int16_t", 2},  {"uint16_t", 2}, {"int32_t", 4}, {"uint32_t", 4},
      {"int64_t", 8},  {"uint64_t", 8}, {"VAddr", 8},   {"RKey", 4},
      {"LockState", 1},
  };
  return kSizes;
}

uint32_t AlignUp(uint32_t v, uint32_t a) { return (v + a - 1) / a * a; }

// Parses a C++ integer literal (handles 0x prefixes, digit separators, and
// literal suffixes — the lexer keeps the raw spelling).
bool ParseUint(const std::string& spelling, uint64_t* out) {
  std::string digits;
  for (char c : spelling) {
    if (c == '\'') continue;
    digits += c;
  }
  while (!digits.empty() && std::isalpha(static_cast<unsigned char>(
                                digits.back())) &&
         digits.compare(0, 2, "0x") != 0) {
    digits.pop_back();
  }
  // Strip u/U/l/L suffixes from hex literals too (back() may be a hex digit;
  // only trailing u/l characters are suffix).
  while (!digits.empty() &&
         (digits.back() == 'u' || digits.back() == 'U' ||
          digits.back() == 'l' || digits.back() == 'L')) {
    digits.pop_back();
  }
  if (digits.empty()) return false;
  try {
    *out = std::stoull(digits, nullptr, 0);
    return true;
  } catch (...) {
    return false;
  }
}

// Extracts the fields of `struct Name { ... };` starting with `open` at the
// opening brace. Member functions, static members, and nested declarations
// are skipped; what remains must be plain data members in declaration
// order — exactly what a trivially-copyable wire struct contains.
bool ParseStructBody(const SourceFile& f, size_t open, WireStruct* out,
                     std::string* err) {
  const auto& toks = f.tokens();
  size_t i = open + 1;
  int depth = 1;
  while (i < toks.size() && depth > 0) {
    if (IsPunct(toks[i], "}")) {
      --depth;
      ++i;
      continue;
    }
    // One member statement: tokens up to `;` at depth 1, treating a body
    // `{...}` after a parameter list as the end (member function).
    std::vector<size_t> stmt;
    bool saw_parens = false;
    bool is_function = false;
    int nest = 0;
    while (i < toks.size()) {
      const Token& t = toks[i];
      if (nest == 0 && IsPunct(t, ";")) {
        ++i;
        break;
      }
      if (nest == 0 && IsPunct(t, "}")) break;  // struct body ends
      if (IsPunct(t, "(")) {
        saw_parens = true;
        ++nest;
      } else if (IsPunct(t, "{")) {
        if (nest == 0 && saw_parens) {
          // Member function body: skip it wholesale.
          int b = 0;
          while (i < toks.size()) {
            if (IsPunct(toks[i], "{")) ++b;
            if (IsPunct(toks[i], "}") && --b == 0) break;
            ++i;
          }
          ++i;
          is_function = true;
          break;
        }
        ++nest;
      } else if (IsPunct(t, ")") || IsPunct(t, "}")) {
        --nest;
      }
      stmt.push_back(i);
      ++i;
    }
    if (is_function || stmt.empty()) continue;
    const Token& first = toks[stmt.front()];
    if (IsIdent(first, "static") || IsIdent(first, "using") ||
        IsIdent(first, "friend") || IsIdent(first, "struct") ||
        IsIdent(first, "enum") || IsIdent(first, "class")) {
      continue;
    }
    // A paren before `=` means a declaration-only member function
    // (`bool operator==(...) const = default;`).
    for (size_t k : stmt) {
      if (IsPunct(toks[k], "=")) break;
      if (IsPunct(toks[k], "(") || IsIdent(toks[k], "operator")) {
        is_function = true;
        break;
      }
    }
    if (is_function) continue;

    // Field: <type tokens> NAME [= init | [N] = init] — the name is the
    // last identifier before `=`/`[`/end, the type the identifier before it.
    size_t name_at = stmt.size();
    for (size_t s = 0; s < stmt.size(); ++s) {
      const Token& t = toks[stmt[s]];
      if (IsPunct(t, "=") || IsPunct(t, "[")) break;
      if (IsIdent(t)) name_at = s;
    }
    if (name_at == stmt.size() || name_at == 0) continue;
    WireField field;
    field.name = toks[stmt[name_at]].text;
    for (size_t s = name_at; s-- > 0;) {
      if (IsIdent(toks[stmt[s]])) {
        field.type = toks[stmt[s]].text;
        break;
      }
    }
    if (name_at + 2 < stmt.size() && IsPunct(toks[stmt[name_at + 1]], "[") &&
        toks[stmt[name_at + 2]].kind == Token::Kind::kNumber) {
      uint64_t extent = 0;
      if (!ParseUint(toks[stmt[name_at + 2]].text, &extent)) {
        *err = out->name + "." + field.name + ": unparsable array extent";
        return false;
      }
      field.count = static_cast<uint32_t>(extent);
    }
    const auto it = TypeSizes().find(field.type);
    if (it == TypeSizes().end()) {
      *err = out->name + "." + field.name + ": type '" + field.type +
             "' is not in the wire-ABI size table (wire_abi.cc); wire "
             "structs may only use fixed-width types";
      return false;
    }
    const uint32_t elem = it->second;
    field.offset = AlignUp(
        out->fields.empty()
            ? 0
            : out->fields.back().offset + out->fields.back().size,
        elem);
    field.size = elem * field.count;
    out->align = std::max(out->align, elem);
    out->fields.push_back(field);
  }
  if (out->fields.empty()) {
    *err = out->name + ": no data members found";
    return false;
  }
  out->size = AlignUp(out->fields.back().offset + out->fields.back().size,
                      out->align);
  return true;
}

}  // namespace

bool ExtractWireAbi(const std::vector<const SourceFile*>& files, WireAbi* out,
                    std::string* err) {
  for (const char* root : kRoots) {
    bool found = false;
    for (const SourceFile* f : files) {
      const auto& toks = f->tokens();
      for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!IsIdent(toks[i], "struct") || !IsIdent(toks[i + 1], root) ||
            !IsPunct(toks[i + 2], "{")) {
          continue;
        }
        WireStruct ws;
        ws.name = root;
        // Repo-relative path: the golden must not depend on whether --src
        // was given as `src` or an absolute path.
        ws.file = f->path();
        const size_t anchor = ws.file.rfind("/src/");
        if (anchor != std::string::npos) ws.file = ws.file.substr(anchor + 1);
        if (!ParseStructBody(*f, i + 2, &ws, err)) return false;
        out->structs.push_back(std::move(ws));
        found = true;
        break;
      }
      if (found) break;
    }
    if (!found) {
      *err = std::string("wire struct '") + root +
             "' not found in the loaded files";
      return false;
    }
  }
  std::sort(out->structs.begin(), out->structs.end(),
            [](const WireStruct& a, const WireStruct& b) {
              return a.name < b.name;
            });

  // Cross-check against the sources' own `static_assert(sizeof(S) == N)`:
  // a disagreement means either the size table or the layout rules drifted
  // from the compiler's — hard error, never a silently different golden.
  for (const SourceFile* f : files) {
    const auto& toks = f->tokens();
    for (size_t i = 0; i + 5 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "sizeof") || !IsPunct(toks[i + 1], "(") ||
          !IsIdent(toks[i + 2]) || !IsPunct(toks[i + 3], ")") ||
          !IsPunct(toks[i + 4], "==") ||
          toks[i + 5].kind != Token::Kind::kNumber) {
        continue;
      }
      for (const WireStruct& ws : out->structs) {
        if (ws.name != toks[i + 2].text) continue;
        uint64_t want = 0;
        if (ParseUint(toks[i + 5].text, &want) && want != ws.size) {
          *err = "computed sizeof(" + ws.name + ") = " +
                 std::to_string(ws.size) + " contradicts " + f->path() +
                 ":" + std::to_string(toks[i].line) + " static_assert (" +
                 std::to_string(want) + ")";
          return false;
        }
      }
    }
  }

  // The packed object-header word: bit layout pinned by the probe
  // static_assert in object_layout.h (`kHeaderProbeWord == 0x...`).
  for (const SourceFile* f : files) {
    const auto& toks = f->tokens();
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (IsIdent(toks[i], "kHeaderProbeWord") && IsPunct(toks[i + 1], "==") &&
          toks[i + 2].kind == Token::Kind::kNumber) {
        uint64_t word = 0;
        if (!ParseUint(toks[i + 2].text, &word)) {
          *err = "unparsable kHeaderProbeWord literal in " + f->path();
          return false;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%016llx",
                      static_cast<unsigned long long>(word));
        out->header_probe_word = buf;
        break;
      }
    }
    if (!out->header_probe_word.empty()) break;
  }
  return true;
}

void PrintWireAbi(const WireAbi& abi, std::ostream& os) {
  os << "{\n";
  os << "  \"header_probe_word\": \"" << abi.header_probe_word << "\",\n";
  os << "  \"structs\": {\n";
  for (size_t s = 0; s < abi.structs.size(); ++s) {
    const WireStruct& ws = abi.structs[s];
    os << "    \"" << ws.name << "\": {\n";
    os << "      \"file\": \"" << ws.file << "\",\n";
    os << "      \"size\": " << ws.size << ",\n";
    os << "      \"align\": " << ws.align << ",\n";
    os << "      \"fields\": [\n";
    for (size_t i = 0; i < ws.fields.size(); ++i) {
      const WireField& fl = ws.fields[i];
      os << "        {\"name\": \"" << fl.name << "\", \"type\": \""
         << fl.type << "\", \"offset\": " << fl.offset
         << ", \"size\": " << fl.size << ", \"count\": " << fl.count << "}"
         << (i + 1 < ws.fields.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (s + 1 < abi.structs.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

}  // namespace corm_tidy
