#include "token_checks.h"

#include <algorithm>
#include <cctype>

namespace corm_tidy {
namespace {

bool Is(const Token& t, Token::Kind k, const char* text) {
  return t.kind == k && t.text == text;
}
bool IsIdent(const Token& t, const char* text) {
  return Is(t, Token::Kind::kIdent, text);
}
bool IsPunct(const Token& t, const char* text) {
  return Is(t, Token::Kind::kPunct, text);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Index one past the matching closer for the opener at `open` (which must
// index an opening punct); tokens.size() when unbalanced.
size_t PastMatching(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], opener)) ++depth;
    if (IsPunct(toks[i], closer) && --depth == 0) return i + 1;
  }
  return toks.size();
}

// Container/string growth methods that may allocate. `insert`/`emplace` on
// a preallocated structure can be allocation-free, but a hot-path file
// promises the steady state performs *no* allocation — a growth-capable
// call there is either cold-path (annotate it) or a contract violation.
const char* kGrowthMethods[] = {
    "push_back", "emplace_back", "emplace", "push_front", "emplace_front",
    "resize",    "reserve",      "append",  "assign",     "insert",
};

// Allocation entry points by name.
const char* kAllocCalls[] = {
    "make_unique", "make_shared", "malloc",       "calloc",
    "realloc",     "strdup",      "aligned_alloc",
};

bool InList(const std::string& s, const char* const* list, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (s == list[i]) return true;
  }
  return false;
}

}  // namespace

void DiagSink::Report(const SourceFile& f, const std::string& check,
                      int line, int col, std::string message) {
  if (f.IsSuppressed(check, line)) {
    ++suppressed;
    return;
  }
  diags->push_back({f.path(), line, col, check, std::move(message)});
}

bool IsAllocatingNewOrDelete(const std::vector<Token>& toks, size_t i,
                             bool* is_delete) {
  const Token& t = toks[i];
  if (t.kind != Token::Kind::kIdent) return false;
  const bool prev_operator = i > 0 && IsIdent(toks[i - 1], "operator");

  if (t.text == "new") {
    // `operator new` declarations are not allocation sites.
    if (prev_operator) return false;
    if (i + 1 >= toks.size()) return false;
    const Token& next = toks[i + 1];
    if (IsPunct(next, "(")) {
      // Placement new does not allocate — unless the placement argument is
      // std::nothrow, which selects the allocating nothrow form.
      const size_t end = PastMatching(toks, i + 1, "(", ")");
      for (size_t j = i + 2; j + 1 < end; ++j) {
        if (IsIdent(toks[j], "nothrow")) {
          *is_delete = false;
          return true;
        }
      }
      return false;
    }
    // Allocating form: `new Type(...)` / `new Type[...]` / `new ns::T{...}`.
    if (next.kind == Token::Kind::kIdent || IsPunct(next, "::")) {
      *is_delete = false;
      return true;
    }
    return false;
  }

  if (t.text == "delete") {
    if (prev_operator) return false;                      // operator delete decl
    if (i > 0 && IsPunct(toks[i - 1], "=")) return false;  // = delete
    if (i + 1 >= toks.size()) return false;
    size_t j = i + 1;
    if (IsPunct(toks[j], "[")) {  // delete[] expr
      if (j + 1 < toks.size() && IsPunct(toks[j + 1], "]")) j += 2;
    }
    if (j >= toks.size()) return false;
    const Token& operand = toks[j];
    if (operand.kind == Token::Kind::kIdent || IsPunct(operand, "(") ||
        IsPunct(operand, "*") || IsPunct(operand, "::")) {
      *is_delete = true;
      return true;
    }
    return false;
  }
  return false;
}

void CheckRawNew(const SourceFile& f, DiagSink* sink) {
  const auto& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    bool is_delete = false;
    if (!IsAllocatingNewOrDelete(toks, i, &is_delete)) continue;
    sink->Report(f, kCheckRawNew, toks[i].line, toks[i].col,
                 is_delete
                     ? "expression `delete`: ownership is RAII-only; return "
                       "the pointer to its owning unique_ptr/pool instead"
                     : "allocating `new` expression: ownership is RAII-only; "
                       "use std::make_unique or a pool");
  }
}

void CheckHotpathAlloc(const SourceFile& f, DiagSink* sink) {
  if (!f.is_hotpath()) return;
  const auto& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    bool is_delete = false;
    if (IsAllocatingNewOrDelete(toks, i, &is_delete)) {
      sink->Report(f, kCheckHotpathAlloc, t.line, t.col,
                   "explicit heap allocation in a corm-hotpath file");
      continue;
    }
    if (t.kind != Token::Kind::kIdent) continue;

    // Named allocation call: make_unique<...>(...), malloc(...), ...
    if (InList(t.text, kAllocCalls, std::size(kAllocCalls)) &&
        i + 1 < toks.size() &&
        (IsPunct(toks[i + 1], "(") || IsPunct(toks[i + 1], "<"))) {
      sink->Report(f, kCheckHotpathAlloc, t.line, t.col,
                   "heap allocation (`" + t.text +
                       "`) in a corm-hotpath file; move it off the data "
                       "plane or annotate the cold path");
      continue;
    }

    // Implicit allocation: growth-capable member call on some object. The
    // token engine cannot see the receiver's type; a hot-path file is held
    // to the stricter reading (the AST engine narrows this to std::
    // containers when available).
    if (InList(t.text, kGrowthMethods, std::size(kGrowthMethods)) && i > 0 &&
        (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
      sink->Report(f, kCheckHotpathAlloc, t.line, t.col,
                   "`" + t.text +
                       "()` may grow its container (implicit allocation) in "
                       "a corm-hotpath file");
      continue;
    }

    // std::function construction/declaration: the capture state of any
    // non-trivial lambda heap-allocates on conversion.
    if (t.text == "function" && i >= 2 && IsPunct(toks[i - 1], "::") &&
        IsIdent(toks[i - 2], "std") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "<")) {
      sink->Report(f, kCheckHotpathAlloc, t.line, t.col,
                   "std::function in a corm-hotpath file: lambda-to-function "
                   "conversion heap-allocates its capture state");
    }
  }
}

void CheckUnboundedWait(const SourceFile& f, DiagSink* sink) {
  const bool strict = IsStrictWaitPath(f.path());
  if (!strict && IsWaitExemptPath(f.path())) return;
  const auto& toks = f.tokens();

  auto report = [&](const std::string& check, int line, int col,
                    std::string msg) {
    if (strict) {
      // Rule 8: no escape hatch inside the strict-wait files — diagnostics
      // bypass the NOLINT window entirely.
      sink->diags->push_back({f.path(), line, col, check, std::move(msg)});
    } else {
      sink->Report(f, check, line, col, std::move(msg));
    }
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    if (strict && IsIdent(toks[i], "sleep_for")) {
      report(kCheckUnboundedWait, toks[i].line, toks[i].col,
             "sleep inside a strict-wait file; compaction phase handlers "
             "and the replication ship path poll and re-enter on the next "
             "slice (rule 8)");
      continue;
    }
    if (!IsIdent(toks[i], "while")) continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    const size_t cond_end = PastMatching(toks, i + 1, "(", ")");

    // Does the condition read an atomic?
    bool reads_atomic = false;
    bool bounded = false;
    for (size_t j = i + 2; j + 1 < cond_end; ++j) {
      if (IsIdent(toks[j], "load") && j > 0 &&
          (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->")) &&
          j + 1 < toks.size() && IsPunct(toks[j + 1], "(")) {
        reads_atomic = true;
      }
      if (toks[j].kind == Token::Kind::kIdent) {
        const std::string low = Lower(toks[j].text);
        if (low.find("deadline") != std::string::npos ||
            low.find("expired") != std::string::npos) {
          bounded = true;  // Deadline-checked condition
        }
        // A service run-loop polling its stop flag is bounded by the node's
        // lifetime, not a completion wait — but rule 8 refuses even that
        // inside the engine: phase handlers poll and *return*.
        if (!strict && (low.find("stop") != std::string::npos ||
                        low.find("quit") != std::string::npos ||
                        low.find("shutdown") != std::string::npos)) {
          bounded = true;
        }
      }
    }
    if (!reads_atomic || bounded) continue;

    // Look through the loop body for a Deadline bound (the common shape:
    // `while (!done.load()) { if (deadline.expired()) return kTimeout; }`).
    size_t body_end = cond_end;
    if (cond_end < toks.size() && IsPunct(toks[cond_end], "{")) {
      body_end = PastMatching(toks, cond_end, "{", "}");
    } else {
      while (body_end < toks.size() && !IsPunct(toks[body_end], ";")) {
        ++body_end;
      }
    }
    for (size_t j = cond_end; j < body_end && !bounded; ++j) {
      if (toks[j].kind != Token::Kind::kIdent) continue;
      const std::string low = Lower(toks[j].text);
      if (low.find("deadline") != std::string::npos ||
          low.find("expired") != std::string::npos) {
        bounded = true;
      }
    }
    if (bounded) continue;

    report(kCheckUnboundedWait, toks[i].line, toks[i].col,
           strict ? "unbounded atomic wait in a strict-wait file; poll and "
                    "re-enter on the next slice, or bound it with a "
                    "Deadline (rule 8, no NOLINT honored)"
                  : "unbounded spin-wait on an atomic; bound it with a "
                    "Deadline (common/retry.h) so a dead peer converts to "
                    "kTimeout instead of a hang");
  }

  // Rule 8 also bans the escape marker itself inside the engine file: an
  // un-honorable NOLINT is a lie waiting for a reader to believe it.
  if (strict) {
    for (int line : f.NolintLines()) {
      const auto& ids = f.NolintsOn(line);
      if (ids.count("corm-spin-wait") || ids.count(kCheckUnboundedWait)) {
        sink->diags->push_back(
            {f.path(), line, 1, kCheckUnboundedWait,
             "spin-wait NOLINT marker inside a strict-wait file "
             "(compaction_engine.cc, log_shipper.cc, replication.cc, "
             "src/sync/); rule 8 grants no escape here — remove the wait "
             "instead"});
      }
    }
  }
}

void CheckEscapeRationale(const SourceFile& f, DiagSink* sink) {
  if (IsThreadAnnotationsPath(f.path())) return;  // the macro's definition

  // A rationale is a comment, in the same-or-preceding-line window, with
  // real words left after the escape tokens themselves are deleted.
  auto has_rationale = [&](int line) {
    std::string window = f.CommentOn(line);
    if (line > 1) window += " " + f.CommentOn(line - 1);
    // Delete escape tokens so they cannot self-certify.
    for (const char* tok : {"NOLINT", "NO_THREAD_SAFETY_ANALYSIS"}) {
      size_t pos;
      while ((pos = window.find(tok)) != std::string::npos) {
        size_t end = pos + std::char_traits<char>::length(tok);
        if (end < window.size() && window[end] == '(') {
          const size_t close = window.find(')', end);
          end = close == std::string::npos ? window.size() : close + 1;
        }
        window.erase(pos, end - pos);
      }
    }
    int run = 0;
    for (char c : window) {
      run = std::isalpha(static_cast<unsigned char>(c)) ? run + 1 : 0;
      if (run >= 3) return true;
    }
    return false;
  };

  for (int line : f.NolintLines()) {
    if (!has_rationale(line)) {
      sink->Report(f, kCheckEscapeRationale, line, 1,
                   "NOLINT(corm-*) without a written rationale on the same "
                   "or preceding line; escapes are debts, document why this "
                   "one is safe (rule 6)");
    }
  }
  for (const Token& t : f.tokens()) {
    if (t.kind == Token::Kind::kIdent &&
        t.text == "NO_THREAD_SAFETY_ANALYSIS" && !has_rationale(t.line)) {
      sink->Report(f, kCheckEscapeRationale, t.line, t.col,
                   "NO_THREAD_SAFETY_ANALYSIS without a written rationale on "
                   "the same or preceding line (rule 6)");
    }
  }
}

bool IsWaitExemptPath(const std::string& path) {
  // The low-level primitives own the sanctioned bounded waits (rule 5).
  return path.find("src/common/") != std::string::npos ||
         path.find("src/rdma/") != std::string::npos;
}

bool IsStrictWaitPath(const std::string& path) {
  // Rule 8's absolute ban covers the compaction engine and, since the
  // replicated log landed, the ship path: a blocked shipper stalls every
  // replicated write behind it, and a blocked applier stalls a whole
  // ingress ring — both must convert dead peers into kTimeout via
  // Deadline, never wait unboundedly. Strict mode overrides the src/rdma/
  // wait exemption for log_shipper.cc. The sync schemes (src/sync/) joined
  // the set with the remote-lock shootout: a CAS spinlock waiting on a
  // crashed holder is exactly the hang rule 8 exists to ban — every spin
  // must run under a RetryPolicy budget and a lease Deadline.
  return path.find("compaction_engine.cc") != std::string::npos ||
         path.find("log_shipper.cc") != std::string::npos ||
         path.find("replication.cc") != std::string::npos ||
         path.find("src/sync/") != std::string::npos ||
         path.find("cas_lock.cc") != std::string::npos;
}

bool IsThreadAnnotationsPath(const std::string& path) {
  return path.find("thread_annotations.h") != std::string::npos;
}

}  // namespace corm_tidy
