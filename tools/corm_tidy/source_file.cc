#include "source_file.h"

#include <fstream>
#include <sstream>

namespace corm_tidy {
namespace {

const std::set<std::string> kEmptySet;

// Extracts every NOLINT(...) id list from a comment string. A bare NOLINT
// (no parenthesized list, clang-tidy style) suppresses everything and is
// recorded as "*".
void ParseNolints(const std::string& comment, std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t p = pos + 6;  // past "NOLINT"
    // NOLINTNEXTLINE is deliberately unsupported: the project convention is
    // same-line or preceding-line markers, and one convention is plenty.
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      pos = p;
      continue;
    }
    if (p < comment.size() && comment[p] == '(') {
      const size_t close = comment.find(')', p);
      if (close == std::string::npos) break;
      std::string ids = comment.substr(p + 1, close - p - 1);
      std::stringstream ss(ids);
      std::string id;
      while (std::getline(ss, id, ',')) {
        const size_t b = id.find_first_not_of(" \t");
        const size_t e = id.find_last_not_of(" \t");
        if (b != std::string::npos) out->insert(id.substr(b, e - b + 1));
      }
      pos = close;
    } else {
      out->insert("*");
      pos = p;
    }
  }
}

}  // namespace

const std::vector<CheckInfo>& CheckCatalog() {
  static const std::vector<CheckInfo> kCatalog = {
      {kCheckRawNew,
       "allocating new/delete expressions in src/ (RAII-only ownership; "
       "lint.sh rule 1, now comment/macro/multi-line aware)"},
      {kCheckHotpathAlloc,
       "any allocation in a `// corm-hotpath` file, including implicit ones "
       "(container growth, string append, std::function) (rule 7)"},
      {kCheckUnboundedWait,
       "loops polling a std::atomic with no Deadline or stop-flag bound; "
       "absolute ban (incl. sleeps and escapes) in compaction_engine.cc, "
       "the replicated-log ship path, and src/sync/ (rules 5+8)"},
      {kCheckEscapeRationale,
       "every NOLINT(corm-*) / NO_THREAD_SAFETY_ANALYSIS escape must carry "
       "a written rationale on the same or preceding line (rule 6)"},
      {kCheckRemapHazard,
       "a raw pointer derived from a Block/object lookup stays live across "
       "a call that may advance compaction (remap point) without "
       "revalidation or pinning; interprocedural since v2 (lookups, remap "
       "points, and revalidations hidden behind helpers are summarized)"},
      {kCheckLockRank,
       "static lock-order verification against the LockRank hierarchy: an "
       "acquisition (or a call that may transitively acquire) a rank <= one "
       "already held is a latent deadlock (common/lock_rank.h)"},
  };
  return kCatalog;
}

bool SourceFile::Load(const std::string& path, SourceFile* out,
                      std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  out->path_ = path;
  out->lex_ = Lex(text);
  // The contract marker must be the very first line, exactly as lint.sh
  // rule 7 requires (head -1) — the whole line, so a first line that merely
  // *starts* with the marker text does not opt a file in.
  std::string first_line = text.substr(0, text.find('\n'));
  while (!first_line.empty() &&
         (first_line.back() == '\r' || first_line.back() == ' ' ||
          first_line.back() == '\t')) {
    first_line.pop_back();
  }
  out->hotpath_ = first_line == "// corm-hotpath";
  for (const auto& [line, comment] : out->lex_.comments) {
    std::set<std::string> ids;
    ParseNolints(comment, &ids);
    if (!ids.empty()) out->nolints_[line] = std::move(ids);
  }
  return true;
}

std::string SourceFile::CommentOn(int line) const {
  auto it = lex_.comments.find(line);
  return it == lex_.comments.end() ? std::string() : it->second;
}

bool SourceFile::LineSuppresses(const std::string& check, int line) const {
  auto it = nolints_.find(line);
  if (it == nolints_.end()) return false;
  const std::set<std::string>& ids = it->second;
  if (ids.count("*") || ids.count(check)) return true;
  if (check == kCheckUnboundedWait && ids.count("corm-spin-wait")) return true;
  if (check == kCheckHotpathAlloc && ids.count(kCheckRawNew)) return true;
  return false;
}

bool SourceFile::IsSuppressed(const std::string& check, int line) const {
  return LineSuppresses(check, line) ||
         (line > 1 && LineSuppresses(check, line - 1));
}

const std::set<std::string>& SourceFile::NolintsOn(int line) const {
  auto it = nolints_.find(line);
  return it == nolints_.end() ? kEmptySet : it->second;
}

std::vector<int> SourceFile::NolintLines() const {
  std::vector<int> lines;
  for (const auto& [line, ids] : nolints_) {
    for (const std::string& id : ids) {
      if (id.rfind("corm-", 0) == 0) {
        lines.push_back(line);
        break;
      }
    }
  }
  return lines;
}

}  // namespace corm_tidy
