// corm-tidy: the corm-lock-rank check — static lock-order verification.
//
// common/lock_rank.h enforces the node's lock hierarchy at *runtime*: a
// thread may only acquire a rank strictly greater than every rank it holds
// (critical regions re-enter at equal rank). Runtime enforcement needs the
// bad interleaving to actually run under an enforcing build; a nesting that
// only occurs on a failover path or an error branch can sit in the tree for
// months before a test walks it. This pass proves the ordering *statically*:
//
//   1. Rank table: the LockRank enum is parsed out of the loaded files
//      (name -> integer), so fixtures can declare their own mini hierarchy
//      and src/ is checked against the real one in common/lock_rank.h.
//   2. Lock table: every `RankedSpinLock`/`RankedSharedMutex` whose rank is
//      visible — declaration initializer `RankedSpinLock mu_{LockRank::kX}`
//      or constructor initializer `mu(LockRank::kX)` — maps a member name
//      to a rank. corm::Mutex/SharedMutex (substrate, outside the
//      hierarchy) rank as kSubstrate when that rank exists.
//   3. Acquisition events per function: LockGuard<...>/SharedLockGuard<...>
//      guard declarations (rank via the lock table, ambiguous names
//      resolved by file stem, else skipped) and LockRankRegion declarations
//      (rank spelled inline, reentrant). Guards are scoped by brace depth,
//      exactly like their destructors.
//   4. Direct check: an acquisition while a higher (or, for non-reentrant
//      locks, equal) rank is held diagnoses corm-lock-rank.
//   5. Interprocedural check: each function's may-acquire rank set is
//      propagated over the call graph (same fixpoint machinery as the
//      remap-hazard summaries); a call made while holding rank R to a
//      function that may acquire a rank < R diagnoses the call site. Equal
//      rank is allowed across calls: the summary cannot distinguish a
//      reentrant region from a real lock, and regions legitimately
//      re-enter.
//
// The held->acquired edges observed in step 3/4 form the lock-order graph
// `corm-tidy --dump-lock-graph` prints; lock_rank_test cross-checks that
// graph against the compiled LockRank enum end-to-end.

#ifndef CORM_TIDY_LOCK_ORDER_H_
#define CORM_TIDY_LOCK_ORDER_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "call_graph.h"
#include "token_checks.h"

namespace corm_tidy {

// One observed nesting: `acquired` taken while `held` was held.
struct LockOrderEdge {
  int held_rank = 0;
  int acquired_rank = 0;
  bool reentrant = false;  // the acquisition is a LockRankRegion
  std::string file;
  int line = 0;
};

class LockOrderAnalysis {
 public:
  // Runs the analysis. `cg` may be null (fixture/--no-interproc mode):
  // direct nesting is still checked, call-site propagation is skipped.
  // Deposits may-acquire sets into cg->summaries() when cg is non-null.
  static LockOrderAnalysis Run(const std::vector<const SourceFile*>& files,
                               CallGraph* cg, DiagSink* sink);

  // Rank table parsed from the LockRank enum(s) in the file set.
  const std::map<std::string, int>& ranks() const { return ranks_; }

  const std::vector<LockOrderEdge>& edges() const { return edges_; }

  // `rank <name> <value>` and `edge <held> <acquired> <reentrant> <site>`
  // lines, the --dump-lock-graph format lock_rank_test parses.
  void Dump(std::ostream& os) const;

 private:
  std::string RankName(int value) const;

  std::map<std::string, int> ranks_;
  std::vector<LockOrderEdge> edges_;
};

}  // namespace corm_tidy

#endif  // CORM_TIDY_LOCK_ORDER_H_
