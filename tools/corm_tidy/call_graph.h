// corm-tidy: whole-program call graph and function summaries (DESIGN.md
// §10.3).
//
// PR 6's checks were per-function: a remap point had to be *textually*
// visible (a call spelled `Step(...)`) and a lookup had to be assigned
// *directly* from a `Lookup*` call. Hide either behind a one-line helper
// and the hazard went dark. This module makes the helpers visible:
//
//   1. A definition pass over every loaded file finds function definitions
//      (token-level heuristic: an identifier, a balanced parameter list,
//      optional const/noexcept/override/ctor-initializer trailer, then a
//      brace — deliberately simple, and wrong only in ways that cost
//      precision, never soundness of the fixpoint below).
//   2. Each definition gets a local summary: the callees it names, whether
//      it directly calls a remap point / lookup / pin idiom, and whether a
//      `return` statement carries a lookup result.
//   3. A worklist fixpoint propagates the three interprocedural facts over
//      the (name-keyed) call graph:
//
//        may-advance-remap      reaches CompactionEngine::Step,
//                               Worker::DrainInbox/DrainReplIngress, ... —
//                               transitively through any chain of calls
//        returns-lookup-tainted returns a Block*/entry derived from a
//                               directory/object lookup (directly, or by
//                               returning another tainted function's result)
//        pins-or-validates      establishes a sanctioned revalidation
//                               (kCompacting/Pin*/Validate/epoch) before
//                               returning — callers may treat the call as a
//                               revalidation point
//
// Summaries are keyed by *bare* name: the token engine cannot resolve
// overloads or receivers, so two unrelated methods that share a name share
// a summary. That conflation only ever merges facts (a name is
// remap-advancing if ANY function of that name is), i.e. the analysis
// over-approximates — the linter's usual trade, biased toward firing, paid
// back with NOLINT + rationale where a human can see the conflation.
//
// The same machinery serves the lock-order pass (lock_order.h), which
// propagates may-acquire rank sets over the same graph.

#ifndef CORM_TIDY_CALL_GRAPH_H_
#define CORM_TIDY_CALL_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "source_file.h"

namespace corm_tidy {

// One function definition found in the token stream.
struct FunctionDef {
  std::string name;        // bare name (Method, not Class::Method)
  std::string qualifier;   // "Class" for Class::Method, "" otherwise
  const SourceFile* file = nullptr;
  int line = 0;            // line of the name token
  size_t body_begin = 0;   // token index of the opening `{`
  size_t body_end = 0;     // token index one past the closing `}`
  std::set<std::string> callees;  // bare names called in the body
};

// The merged, name-keyed summary the dataflow passes consume.
struct FunctionSummary {
  bool advances_remap = false;  // may (transitively) advance compaction
  bool returns_lookup = false;  // returns a lookup-derived pointer/entry
  bool pins_or_validates = false;  // performs a sanctioned revalidation
  // Ranks this function may (transitively) acquire; filled by the
  // lock-order pass. Values are LockRank enum integers.
  std::set<int> acquires;
};

class CallGraph {
 public:
  // Builds definitions + local summaries for every file, then runs the
  // fixpoint. Files must outlive the graph.
  static CallGraph Build(const std::vector<const SourceFile*>& files);

  // Summary for a bare callee name; nullptr when no definition with that
  // name was loaded (an external/library call — no interprocedural facts).
  const FunctionSummary* SummaryFor(const std::string& name) const;

  const std::vector<FunctionDef>& definitions() const { return defs_; }

  // All definitions sharing a bare name (conflation set).
  std::vector<const FunctionDef*> DefsNamed(const std::string& name) const;

  // Root predicates shared with the intra-procedural pass: the textual
  // remap-point / lookup / revalidation sets from PR 6 (remap_hazard.cc).
  static bool IsRemapRootName(const std::string& name);
  static bool IsLookupRootName(const std::string& name);

  // Mutable access for the lock-order pass to deposit acquire sets before
  // its own fixpoint.
  std::map<std::string, FunctionSummary>& summaries() { return summaries_; }

 private:
  std::vector<FunctionDef> defs_;
  std::map<std::string, FunctionSummary> summaries_;
};

// Scans one file's token stream for function definitions (exposed for the
// lock-order pass, which walks bodies itself).
std::vector<FunctionDef> FindFunctionDefs(const SourceFile& f);

}  // namespace corm_tidy

#endif  // CORM_TIDY_CALL_GRAPH_H_
