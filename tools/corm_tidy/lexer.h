// corm-tidy: a minimal C++ lexer for the token fallback engine.
//
// The token engine exists so the linter still produces real diagnostics on
// hosts without the Clang development headers (the AST engine's dependency).
// It is deliberately not a parser: it produces a comment- and string-aware
// token stream with line/column positions, which is exactly what the grep
// rules lacked — greps cannot tell `delete msg;` from `// delete msg later`
// or see a `delete` whose operand sits on the next line. Everything type-
// aware stays in the AST engine; everything here must hold on a lone file
// with no compilation database.

#ifndef CORM_TIDY_LEXER_H_
#define CORM_TIDY_LEXER_H_

#include <map>
#include <string>
#include <vector>

namespace corm_tidy {

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords (new/delete/while/...)
    kNumber,  // numeric literals
    kString,  // string literals (incl. raw/prefixed forms), body in text
    kChar,    // character literals
    kPunct,   // operators / punctuation, multi-char where it matters
  };
  Kind kind = Kind::kPunct;
  std::string text;  // identifier/punct spelling; literal spelling for
                     // numbers and the body (quotes stripped) for strings —
                     // the wire-ABI extractor and the audits read literals
  int line = 0;      // 1-based
  int col = 0;       // 1-based
};

struct LexResult {
  std::vector<Token> tokens;
  // Concatenated comment text per line (both // and /* */ styles). Used for
  // NOLINT markers, rationale checks, and the `// corm-hotpath` contract.
  std::map<int, std::string> comments;
};

// Lexes `text`. Preprocessor directives (including continuation lines) are
// skipped entirely: macro bodies are the AST engine's problem, and the grep
// rules never saw them either, so the fallback stays no *noisier* than the
// greps while becoming strictly more precise on real code.
LexResult Lex(const std::string& text);

}  // namespace corm_tidy

#endif  // CORM_TIDY_LEXER_H_
